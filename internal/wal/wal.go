// Package wal provides durable persistence for the recommender's
// mutable state: an append-only, JSON-lines write-ahead log of rating
// and profile events with sequence numbers, crash-tolerant replay
// (a torn final record is detected and ignored), and compaction to a
// snapshot. The paper's platform stores ratings and PHR profiles in a
// database (§II); this log is the storage engine equivalent for the
// stdlib-only reproduction.
//
// Record format (one JSON object per line):
//
//	{"seq":1,"op":"rate","user":"u1","item":"d1","value":4.5}
//	{"seq":2,"op":"unrate","user":"u1","item":"d1"}
//	{"seq":3,"op":"patient","patient":{...phr.Profile JSON...}}
//
// Appends are serialized and flushed to the underlying file before
// returning; Sync forces fsync.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"fairhealth/internal/model"
	"fairhealth/internal/phr"
	"fairhealth/internal/ratings"
)

// Ops.
const (
	OpRate    = "rate"
	OpUnrate  = "unrate"
	OpPatient = "patient"
)

// Common errors.
var (
	// ErrClosed is returned when appending to a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrBadRecord is returned by Replay for structurally invalid
	// records in the middle of the log (a torn FINAL record is not an
	// error — it is truncated crash residue).
	ErrBadRecord = errors.New("wal: bad record")
)

// Record is one logged event.
type Record struct {
	Seq     uint64       `json:"seq"`
	Op      string       `json:"op"`
	User    model.UserID `json:"user,omitempty"`
	Item    model.ItemID `json:"item,omitempty"`
	Value   model.Rating `json:"value,omitempty"`
	Patient *phr.Profile `json:"patient,omitempty"`
}

// Log is an append-only event log bound to a file.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	seq    uint64
	closed bool
}

// Open opens (or creates) the log at path and positions appends after
// the last valid record. The returned log's sequence continues from
// the highest replayed seq.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	// scan to find the last valid offset and sequence
	var lastSeq uint64
	validEnd := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn or corrupt tail: stop here, truncate below
		}
		lastSeq = rec.Seq
		validEnd += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		f.Close()
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriter(f), seq: lastSeq}, nil
}

// Append writes a record (seq is assigned by the log) and flushes it
// to the OS.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.seq++
	rec.Seq = l.seq
	raw, err := json.Marshal(rec)
	if err != nil {
		l.seq--
		return 0, fmt.Errorf("wal: marshal: %w", err)
	}
	if _, err := l.w.Write(raw); err != nil {
		return 0, fmt.Errorf("wal: write: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return 0, fmt.Errorf("wal: write: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return 0, fmt.Errorf("wal: flush: %w", err)
	}
	return rec.Seq, nil
}

// AppendRating logs a rating upsert.
func (l *Log) AppendRating(u model.UserID, i model.ItemID, v model.Rating) (uint64, error) {
	return l.Append(Record{Op: OpRate, User: u, Item: i, Value: v})
}

// AppendUnrate logs a rating removal.
func (l *Log) AppendUnrate(u model.UserID, i model.ItemID) (uint64, error) {
	return l.Append(Record{Op: OpUnrate, User: u, Item: i})
}

// AppendPatient logs a profile upsert.
func (l *Log) AppendPatient(p *phr.Profile) (uint64, error) {
	return l.Append(Record{Op: OpPatient, Patient: p})
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Sync fsyncs the file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: flush on close: %w", err)
	}
	return l.f.Close()
}

// Replay streams records from r in order, calling apply for each. A
// torn final line is ignored (crash residue); malformed records before
// the end return ErrBadRecord. It returns the number of applied
// records.
func Replay(r io.Reader, apply func(Record) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	applied := 0
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// a bad record followed by more records = real corruption
			return applied, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			pendingErr = fmt.Errorf("%w: line %d: %v", ErrBadRecord, applied+1, err)
			continue
		}
		if err := apply(rec); err != nil {
			return applied, fmt.Errorf("wal: apply seq %d: %w", rec.Seq, err)
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return applied, fmt.Errorf("wal: replay scan: %w", err)
	}
	// pendingErr at EOF = torn tail, silently dropped
	return applied, nil
}

// RecordHeader is the cheap routing prefix of a Record: enough to
// decide whether a bootstrap or catch-up pass wants the record at all,
// without decoding the payload (patient records carry a full PHR
// profile, which dominates unmarshal cost).
type RecordHeader struct {
	Seq  uint64       `json:"seq"`
	Op   string       `json:"op"`
	User model.UserID `json:"user,omitempty"`
}

// ReplayIf streams records from r in order, decoding only the header
// of each line first and calling apply only for records where
// keep(header) is true — skipped records are never fully parsed. Torn
// and corrupt records follow the same rules as Replay: a torn final
// line is ignored, malformed records before the end return
// ErrBadRecord. It returns the number of applied and skipped records.
func ReplayIf(r io.Reader, keep func(RecordHeader) bool, apply func(Record) error) (applied, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return applied, skipped, pendingErr
		}
		// json.Unmarshal validates the whole value even when decoding
		// into the thin header struct, so torn-tail detection is as
		// strict as a full parse.
		var hdr RecordHeader
		if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
			pendingErr = fmt.Errorf("%w: line %d: %v", ErrBadRecord, applied+skipped+1, err)
			continue
		}
		if !keep(hdr) {
			skipped++
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			pendingErr = fmt.Errorf("%w: line %d: %v", ErrBadRecord, applied+skipped+1, err)
			continue
		}
		if err := apply(rec); err != nil {
			return applied, skipped, fmt.Errorf("wal: apply seq %d: %w", rec.Seq, err)
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return applied, skipped, fmt.Errorf("wal: replay scan: %w", err)
	}
	return applied, skipped, nil
}

// ReplayFileIf is ReplayIf over the log at path.
func ReplayFileIf(path string, keep func(RecordHeader) bool, apply func(Record) error) (applied, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()
	return ReplayIf(f, keep, apply)
}

// SeqAfter returns a ReplayIf predicate keeping records with a
// sequence number strictly greater than seq — the tail a lagging
// replica still needs.
func SeqAfter(seq uint64) func(RecordHeader) bool {
	return func(h RecordHeader) bool { return h.Seq > seq }
}

// ReplayFile replays the log at path.
func ReplayFile(path string, apply func(Record) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()
	return Replay(f, apply)
}

// LoadState rebuilds a rating store and a PHR store from the log at
// path. Missing files yield empty state (first boot).
func LoadState(path string, phrStore *phr.Store) (*ratings.Store, int, error) {
	store := ratings.New()
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return store, 0, nil
	}
	n, err := ReplayFile(path, func(rec Record) error {
		switch rec.Op {
		case OpRate:
			return store.Add(rec.User, rec.Item, rec.Value)
		case OpUnrate:
			if err := store.Remove(rec.User, rec.Item); err != nil && !errors.Is(err, ratings.ErrNotFound) {
				return err
			}
			return nil
		case OpPatient:
			if rec.Patient == nil {
				return fmt.Errorf("%w: patient op without payload", ErrBadRecord)
			}
			if phrStore == nil {
				return nil
			}
			if phrStore.Has(rec.Patient.ID) {
				return phrStore.Update(rec.Patient)
			}
			return phrStore.Put(rec.Patient)
		default:
			return fmt.Errorf("%w: unknown op %q", ErrBadRecord, rec.Op)
		}
	})
	if err != nil {
		return nil, n, err
	}
	return store, n, nil
}

// Compact writes a fresh log at path containing only the current state
// (one rate record per rating, one patient record per profile),
// replacing the old file atomically via rename. It returns the new
// record count.
func Compact(path string, store *ratings.Store, phrStore *phr.Store) (int, error) {
	tmp := path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("wal: compact create: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	seq := uint64(0)
	count := 0
	write := func(rec Record) error {
		seq++
		rec.Seq = seq
		count++
		return enc.Encode(rec)
	}
	if phrStore != nil {
		for _, id := range phrStore.IDs() {
			p, err := phrStore.Get(id)
			if err != nil {
				f.Close()
				os.Remove(tmp)
				return 0, err
			}
			if err := write(Record{Op: OpPatient, Patient: p}); err != nil {
				f.Close()
				os.Remove(tmp)
				return 0, fmt.Errorf("wal: compact write: %w", err)
			}
		}
	}
	for _, t := range store.Triples() {
		if err := write(Record{Op: OpRate, User: t.User, Item: t.Item, Value: t.Value}); err != nil {
			f.Close()
			os.Remove(tmp)
			return 0, fmt.Errorf("wal: compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("wal: compact flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("wal: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("wal: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("wal: compact rename: %w", err)
	}
	return count, nil
}
