package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fairhealth/internal/model"
	"fairhealth/internal/phr"
)

func TestReplayIfFiltersBySeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	log, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := log.AppendRating(model.UserID(fmt.Sprintf("u%d", i)), "d1", 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	applied, skipped, err := ReplayFileIf(path, SeqAfter(7), func(rec Record) error {
		got = append(got, rec.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || skipped != 7 {
		t.Fatalf("applied=%d skipped=%d, want 3/7", applied, skipped)
	}
	if want := []uint64{8, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("applied seqs %v, want %v", got, want)
	}
}

func TestReplayIfSkippedRecordsNotParsed(t *testing.T) {
	// The payload of a skipped record may be arbitrarily malformed at
	// the Record level as long as the header fields parse — filtered
	// replay must not pay for (or trip over) the full decode.
	input := `{"seq":1,"op":"patient","patient":{"id":"p1"}}` + "\n" +
		`{"seq":2,"op":"rate","user":"u1","item":"d1","value":4}` + "\n"
	applied, skipped, err := ReplayIf(strings.NewReader(input), func(h RecordHeader) bool {
		return h.Op == OpRate
	}, func(rec Record) error {
		if rec.Patient != nil {
			t.Fatal("patient record leaked through the filter")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", applied, skipped)
	}
}

func TestReplayIfTornTailIgnored(t *testing.T) {
	input := `{"seq":1,"op":"rate","user":"u","item":"d","value":2}` + "\n" + `{"seq":2,"op":"ra`
	applied, skipped, err := ReplayIf(strings.NewReader(input), func(RecordHeader) bool { return true },
		func(Record) error { return nil })
	if err != nil {
		t.Fatalf("torn tail should be ignored, got %v", err)
	}
	if applied != 1 || skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 1/0", applied, skipped)
	}
}

func TestReplayIfMidLogCorruptionFails(t *testing.T) {
	input := "garbage\n" + `{"seq":2,"op":"rate","user":"u","item":"d","value":2}` + "\n"
	_, _, err := ReplayIf(strings.NewReader(input), func(RecordHeader) bool { return true },
		func(Record) error { return nil })
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("want ErrBadRecord, got %v", err)
	}
}

func TestReplayIfApplyErrorPropagates(t *testing.T) {
	input := `{"seq":1,"op":"rate","user":"u","item":"d","value":2}` + "\n"
	boom := errors.New("boom")
	_, _, err := ReplayIf(strings.NewReader(input), func(RecordHeader) bool { return true },
		func(Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want apply error, got %v", err)
	}
}

// TestCompactReplayRoundTripUnderConcurrentAppends covers the
// snapshot path end to end while the log is hot: concurrent appenders
// race a mid-stream LoadState snapshot, then the final state is
// compacted and replayed and must reproduce the same store.
func TestCompactReplayRoundTripUnderConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	log, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			u := model.UserID(fmt.Sprintf("user%02d", w))
			for i := 0; i < perW; i++ {
				item := model.ItemID(fmt.Sprintf("doc%03d", i))
				if _, err := log.AppendRating(u, item, model.Rating(1+(w+i)%5)); err != nil {
					errs <- err
					return
				}
				if i%7 == 3 {
					if _, err := log.AppendUnrate(u, item); err != nil {
						errs <- err
						return
					}
				}
				if i%11 == 5 {
					p := &phr.Profile{ID: model.UserID(fmt.Sprintf("user%02d", w))}
					if _, err := log.AppendPatient(p); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	// A concurrent snapshot reader: the prefix it sees must always be
	// a valid log (appends are line-atomic through the serialized
	// writer + flush).
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			if err := log.Sync(); err != nil {
				errs <- err
				return
			}
			if _, _, err := LoadState(path, phr.NewStore(nil)); err != nil {
				errs <- fmt.Errorf("mid-stream snapshot: %w", err)
			}
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	finalSeq := log.Seq()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot the final state, compact, and replay the compacted log:
	// the round trip must be lossless.
	phrBefore := phr.NewStore(nil)
	store, n, err := LoadState(path, phrBefore)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != finalSeq {
		t.Fatalf("replayed %d records, want %d", n, finalSeq)
	}
	compacted, err := Compact(path, store, phrBefore)
	if err != nil {
		t.Fatal(err)
	}
	if compacted >= n {
		t.Fatalf("compaction did not shrink the log: %d -> %d", n, compacted)
	}
	phrAfter := phr.NewStore(nil)
	store2, n2, err := LoadState(path, phrAfter)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != compacted {
		t.Fatalf("replayed %d compacted records, want %d", n2, compacted)
	}
	if !reflect.DeepEqual(tripleSet(store.Triples()), tripleSet(store2.Triples())) {
		t.Fatal("ratings diverged across compact+replay")
	}
	if !reflect.DeepEqual(phrBefore.IDs(), phrAfter.IDs()) {
		t.Fatalf("profiles diverged across compact+replay: %v vs %v", phrBefore.IDs(), phrAfter.IDs())
	}
	// The compacted log must reopen cleanly and keep appending.
	log2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	seq, err := log2.AppendRating("after", "doc000", 5)
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(compacted)+1 {
		t.Fatalf("post-compact seq %d, want %d", seq, compacted+1)
	}
	if fi, err := os.Stat(path + ".compact"); err == nil {
		t.Fatalf("compact temp file left behind: %v", fi.Name())
	}
}

func tripleSet(ts []model.Triple) map[string]float64 {
	out := make(map[string]float64, len(ts))
	for _, tr := range ts {
		out[string(tr.User)+"\x00"+string(tr.Item)] = float64(tr.Value)
	}
	return out
}
