package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fairhealth/internal/model"
	"fairhealth/internal/phr"
	"fairhealth/internal/ratings"
	"fairhealth/internal/snomed"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "events.wal")
}

func TestAppendAndReplayRoundTrip(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRating("u1", "d1", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRating("u2", "d1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendUnrate("u2", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	store, n, err := LoadState(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("applied = %d, want 3", n)
	}
	if r, ok := store.Rating("u1", "d1"); !ok || r != 4 {
		t.Errorf("rating u1/d1 = %v,%v", r, ok)
	}
	if store.HasRated("u2", "d1") {
		t.Error("unrated rating still present")
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		seq, err := l.AppendRating("u", model.ItemID(fmt.Sprintf("d%d", k)), 3)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(k) {
			t.Errorf("seq = %d, want %d", seq, k)
		}
	}
	if l.Seq() != 5 {
		t.Errorf("Seq = %d", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// reopening continues the sequence
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, err := l2.AppendRating("u", "d6", 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Errorf("seq after reopen = %d, want 6", seq)
	}
}

func TestTornTailIsDropped(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRating("u1", "d1", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRating("u1", "d2", 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// simulate a crash mid-append: half a record at the end
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"rate","user":"u1","it`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store, n, err := LoadState(path, nil)
	if err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if n != 2 || store.Len() != 2 {
		t.Errorf("applied = %d, ratings = %d, want 2/2", n, store.Len())
	}
	// reopening truncates the torn tail and appends cleanly after it
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l2.AppendRating("u1", "d3", 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Errorf("seq after torn-tail reopen = %d, want 3", seq)
	}
	l2.Close()
	store, n, err = LoadState(path, nil)
	if err != nil || n != 3 || store.Len() != 3 {
		t.Errorf("after repair: n=%d len=%d err=%v", n, store.Len(), err)
	}
}

func TestCorruptionMidLogFails(t *testing.T) {
	content := `{"seq":1,"op":"rate","user":"u","item":"d","value":3}
GARBAGE NOT JSON
{"seq":3,"op":"rate","user":"u","item":"e","value":4}
`
	_, err := Replay(strings.NewReader(content), func(Record) error { return nil })
	if !errors.Is(err, ErrBadRecord) {
		t.Errorf("mid-log corruption: %v, want ErrBadRecord", err)
	}
}

func TestReplayApplyErrorPropagates(t *testing.T) {
	content := `{"seq":1,"op":"rate","user":"u","item":"d","value":99}` + "\n"
	_, err := Replay(strings.NewReader(content), func(r Record) error {
		return r.Value.Validate()
	})
	if err == nil {
		t.Error("apply error swallowed")
	}
}

func TestUnknownOpFailsLoad(t *testing.T) {
	path := tempLog(t)
	if err := os.WriteFile(path, []byte(`{"seq":1,"op":"explode"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadState(path, nil); !errors.Is(err, ErrBadRecord) {
		t.Errorf("unknown op: %v", err)
	}
}

func TestPatientRecords(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	prof := phr.TableIPatients()[0]
	if _, err := l.AppendPatient(prof); err != nil {
		t.Fatal(err)
	}
	// update via second record
	upd := prof.Clone()
	upd.Age = 41
	if _, err := l.AppendPatient(upd); err != nil {
		t.Fatal(err)
	}
	l.Close()

	phrStore := phr.NewStore(snomed.Load())
	_, n, err := LoadState(path, phrStore)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("applied = %d", n)
	}
	got, err := phrStore.Get(prof.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Age != 41 {
		t.Errorf("age = %d, want 41 (last write wins)", got.Age)
	}
}

func TestLoadStateMissingFile(t *testing.T) {
	store, n, err := LoadState(filepath.Join(t.TempDir(), "nope.wal"), nil)
	if err != nil || n != 0 || store.Len() != 0 {
		t.Errorf("missing file: %v %d %d", err, n, store.Len())
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.AppendRating("u", "d", 3); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestCompact(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// churn: rate, re-rate, unrate
	if _, err := l.AppendRating("u1", "d1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRating("u1", "d1", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRating("u2", "d2", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendUnrate("u2", "d2"); err != nil {
		t.Fatal(err)
	}
	prof := phr.TableIPatients()[1]
	if _, err := l.AppendPatient(prof); err != nil {
		t.Fatal(err)
	}
	l.Close()

	phrStore := phr.NewStore(snomed.Load())
	store, _, err := LoadState(path, phrStore)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Compact(path, store, phrStore)
	if err != nil {
		t.Fatal(err)
	}
	// 1 live rating + 1 patient
	if n != 2 {
		t.Errorf("compact records = %d, want 2", n)
	}
	// state identical after compaction
	phr2 := phr.NewStore(snomed.Load())
	store2, n2, err := LoadState(path, phr2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 2 || store2.Len() != 1 {
		t.Errorf("after compact: applied=%d ratings=%d", n2, store2.Len())
	}
	if r, ok := store2.Rating("u1", "d1"); !ok || r != 5 {
		t.Errorf("rating = %v,%v want 5 (last write)", r, ok)
	}
	if !phr2.Has(prof.ID) {
		t.Error("patient lost in compaction")
	}
	// sequence restarts from the compacted count
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if seq, _ := l2.AppendRating("u9", "d9", 2); seq != 3 {
		t.Errorf("seq after compact = %d, want 3", seq)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				if _, err := l.AppendRating(model.UserID(fmt.Sprintf("u%d", w)), model.ItemID(fmt.Sprintf("d%d", k)), 3); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	store, n, err := LoadState(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Errorf("applied = %d, want 200", n)
	}
	if store.Len() != 200 {
		t.Errorf("ratings = %d, want 200", store.Len())
	}
	// seqs must be unique and dense 1..200
	seen := map[uint64]bool{}
	if _, err := ReplayFile(path, func(r Record) error {
		if seen[r.Seq] {
			return fmt.Errorf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for s := uint64(1); s <= 200; s++ {
		if !seen[s] {
			t.Fatalf("missing seq %d", s)
		}
	}
}

// TestRoundTripWithRatingsStore: WAL → store → compact → WAL → store
// is a fixed point.
func TestCompactIdempotent(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		if _, err := l.AppendRating(model.UserID(fmt.Sprintf("u%d", k%4)), model.ItemID(fmt.Sprintf("d%d", k)), model.Rating(1+k%5)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	s1, _, err := LoadState(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(path, s1, nil); err != nil {
		t.Fatal(err)
	}
	s2, _, err := LoadState(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(path, s2, nil); err != nil {
		t.Fatal(err)
	}
	s3, _, err := LoadState(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1, t3 := s1.Triples(), s3.Triples()
	if len(t1) != len(t3) {
		t.Fatalf("triple counts differ: %d vs %d", len(t1), len(t3))
	}
	for i := range t1 {
		if t1[i] != t3[i] {
			t.Fatalf("triple %d differs: %+v vs %+v", i, t1[i], t3[i])
		}
	}
}

var _ = ratings.New // keep the ratings import under refactors
