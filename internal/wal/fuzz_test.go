package wal

import (
	"strings"
	"testing"
)

// FuzzReplay ensures arbitrary log bytes never panic the replayer; the
// apply callback exercises record-field access.
func FuzzReplay(f *testing.F) {
	f.Add(`{"seq":1,"op":"rate","user":"u","item":"d","value":3}` + "\n")
	f.Add(`{"seq":1,"op":"unrate","user":"u","item":"d"}` + "\n")
	f.Add(`{"seq":1,"op":"patient","patient":{"id":"p"}}` + "\n")
	f.Add("not json\n")
	f.Add(`{"seq":1,"op":"rate"}` + "\n" + `{"torn`)
	f.Add("")
	f.Add("\n\n\n")
	// ReplayIf seeds: filtered replay must agree with Replay on the
	// same bytes, so seed the corpus with header edge cases too — seq
	// gaps, zero seqs, big patient payloads worth skipping, and a
	// header that parses while the full record is the torn tail.
	f.Add(`{"seq":7,"op":"rate","user":"a","item":"d","value":1}` + "\n" +
		`{"seq":9,"op":"rate","user":"b","item":"d","value":2}` + "\n")
	f.Add(`{"seq":0,"op":"patient","patient":{"id":"p","problems":["38341003","73211009"],"medications":["m1","m2"]}}` + "\n")
	f.Add(`{"seq":2,"op":"unrate","user":"u","item":"d"}` + "\n" + `{"seq":3,"op":"patient","patient":{"id"`)
	f.Fuzz(func(t *testing.T, input string) {
		n, err := Replay(strings.NewReader(input), func(rec Record) error {
			_ = rec.Op
			_ = rec.User
			if rec.Patient != nil {
				_ = rec.Patient.ID
			}
			return nil
		})
		if err == nil && n < 0 {
			t.Fatal("negative record count")
		}

		// ReplayIf with a keep-everything predicate must behave exactly
		// like Replay on the same input.
		all, skippedAll, errAll := ReplayIf(strings.NewReader(input),
			func(RecordHeader) bool { return true },
			func(rec Record) error {
				_ = rec.Op
				return nil
			})
		if all != n || skippedAll != 0 {
			t.Fatalf("ReplayIf(keep all) applied %d skipped %d; Replay applied %d", all, skippedAll, n)
		}
		if (err == nil) != (errAll == nil) {
			t.Fatalf("ReplayIf error %v disagrees with Replay error %v", errAll, err)
		}

		// A filtering predicate partitions the same record set: applied
		// + skipped must equal the unfiltered count, and every record
		// that reaches apply must satisfy the predicate.
		keep := func(h RecordHeader) bool { return h.Seq%2 == 1 }
		applied, skipped, errOdd := ReplayIf(strings.NewReader(input), keep, func(rec Record) error {
			if rec.Seq%2 != 1 {
				t.Fatalf("record seq %d leaked through the predicate", rec.Seq)
			}
			return nil
		})
		if errOdd == nil && err == nil && applied+skipped != n {
			t.Fatalf("filtered replay saw %d+%d records, unfiltered saw %d", applied, skipped, n)
		}
	})
}
