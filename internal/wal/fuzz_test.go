package wal

import (
	"strings"
	"testing"
)

// FuzzReplay ensures arbitrary log bytes never panic the replayer; the
// apply callback exercises record-field access.
func FuzzReplay(f *testing.F) {
	f.Add(`{"seq":1,"op":"rate","user":"u","item":"d","value":3}` + "\n")
	f.Add(`{"seq":1,"op":"unrate","user":"u","item":"d"}` + "\n")
	f.Add(`{"seq":1,"op":"patient","patient":{"id":"p"}}` + "\n")
	f.Add("not json\n")
	f.Add(`{"seq":1,"op":"rate"}` + "\n" + `{"torn`)
	f.Add("")
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		n, err := Replay(strings.NewReader(input), func(rec Record) error {
			_ = rec.Op
			_ = rec.User
			if rec.Patient != nil {
				_ = rec.Patient.ID
			}
			return nil
		})
		if err == nil && n < 0 {
			t.Fatal("negative record count")
		}
	})
}
