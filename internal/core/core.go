// Package core implements the paper's primary contribution (§III.C–D):
// fairness-aware selection of the top-z group recommendations.
//
// Given a group G, each member's personal top-k list A_u, and the group
// relevance relevanceG(G,i) of every candidate item, the goal is the
// set D* of z items maximizing
//
//	value(G,D) = fairness(G,D) · Σ_{i∈D} relevanceG(G,i)
//
// where fairness(G,D) = |G_D|/|G| and D is fair to u when it contains
// at least one item of A_u (Def. 3).
//
// Two solvers are provided: the exponential brute force that scores
// all C(m,z) candidate subsets, and the paper's Algorithm 1 — a greedy
// heuristic that repeatedly picks, for every ordered pair of members
// (u_x, u_y), the item of A_{u_y} with the maximum individual
// relevance for u_x. Proposition 1 (z ≥ |G| ⇒ fairness = 1) is
// verified by this package's tests.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"sync"

	"fairhealth/internal/model"
	"fairhealth/internal/topk"
)

// Common errors.
var (
	// ErrEmptyGroup is returned when the problem has no group members.
	ErrEmptyGroup = errors.New("core: empty group")
	// ErrBadZ is returned when z < 1.
	ErrBadZ = errors.New("core: z must be ≥ 1")
	// ErrTooManyCombinations guards the brute force against infeasible
	// C(m,z) enumerations.
	ErrTooManyCombinations = errors.New("core: combination count exceeds limit")
)

// UserLists holds each member's personal top-k list A_u (§III.A).
type UserLists map[model.UserID][]model.ScoredItem

// RelevanceFn returns the individual predicted relevance of item i for
// user u; ok=false when undefined. Algorithm 1 consults it when
// scanning another member's list.
type RelevanceFn func(u model.UserID, i model.ItemID) (float64, bool)

// Input bundles everything both solvers need.
type Input struct {
	// Group is the caregiver's patient group G.
	Group model.Group
	// Lists maps each member to A_u. Items outside these lists never
	// make a set "fair" for the member (Def. 3).
	Lists UserLists
	// GroupRel maps every candidate item to relevanceG(G,i) (Def. 2).
	// The brute force enumerates subsets of exactly this key set; the
	// greedy uses it to score its output.
	GroupRel map[model.ItemID]float64
	// Rel is the individual relevance estimate used by Algorithm 1's
	// inner selection. Items with undefined relevance rank below all
	// defined ones (ties still break on ascending item ID).
	Rel RelevanceFn
}

func (in *Input) validate(z int) error {
	if len(in.Group) == 0 {
		return ErrEmptyGroup
	}
	if z < 1 {
		return fmt.Errorf("%w: got %d", ErrBadZ, z)
	}
	return nil
}

// Result describes a selected recommendation set with its quality
// measures.
type Result struct {
	// Items in selection order (greedy) or value-optimal order (brute
	// force, sorted by group relevance descending).
	Items []model.ItemID
	// Fairness is |G_D| / |G| (Def. 3).
	Fairness float64
	// SumRelevance is Σ_{i∈D} relevanceG(G,i); items missing from
	// GroupRel contribute 0.
	SumRelevance float64
	// Value = Fairness · SumRelevance.
	Value float64
	// Combinations is the number of candidate subsets the brute force
	// scored (0 for the greedy).
	Combinations int64
}

// Fairness evaluates Def. 3 directly: the fraction of group members u
// for which D contains at least one item of A_u. An empty group yields
// 0.
func Fairness(g model.Group, lists UserLists, d []model.ItemID) float64 {
	if len(g) == 0 {
		return 0
	}
	dset := model.NewItemSet(d...)
	satisfied := 0
	for _, u := range g {
		for _, it := range lists[u] {
			if dset.Has(it.Item) {
				satisfied++
				break
			}
		}
	}
	return float64(satisfied) / float64(len(g))
}

// Evaluate scores an arbitrary selection D under the input's group
// relevance and fairness measures.
func Evaluate(in Input, d []model.ItemID) Result {
	f := Fairness(in.Group, in.Lists, d)
	var sum float64
	for _, i := range d {
		sum += in.GroupRel[i]
	}
	return Result{
		Items:        append([]model.ItemID(nil), d...),
		Fairness:     f,
		SumRelevance: sum,
		Value:        f * sum,
	}
}

// ---------------------------------------------------------------------------
// Algorithm 1 — the greedy heuristic

// Greedy implements Algorithm 1. Until |D| = z (or candidates are
// exhausted), it sweeps all ordered member pairs (u_x, u_y), x ≠ y,
// and for each adds the item of A_{u_y} not yet in D with the maximum
// relevance(u_x, ·).
//
// Two pragmatic clarifications of the pseudocode: items already in D
// are skipped so every iteration makes progress (the paper's D = D ∪ i
// silently deduplicates), and a singleton group — for which the x ≠ y
// loops never execute — degenerates to taking the member's own list in
// order, which trivially satisfies Def. 3 for that member.
func Greedy(in Input, z int) (Result, error) {
	return GreedyContext(context.Background(), in, z)
}

// GreedyContext is Greedy with cooperative cancellation: the sweep
// checks ctx between member-pair selections and returns ctx.Err() when
// it fires — the hook the batch group API uses to abandon mid-flight
// work. A nil ctx behaves like context.Background().
//
// Implementation: instead of rescanning every list per round (the
// O(z·n²·L) shape of the pseudocode), each ordered pair (x, y)
// pre-sorts A_{u_y} by x's relevance ONCE — defined before undefined,
// relevance descending, ties ascending item ID, the exact bestFor
// order — and each round pops the first entry not yet in D through a
// monotone cursor: amortized O(n²·L log L + z·n²). The per-pair sorted
// lists live in a pooled scratch arena reused across calls, so batch
// serving does not reallocate them per group. Selections are
// provably identical to the rescan reference (GreedyReference), which
// the equivalence tests pin.
func GreedyContext(ctx context.Context, in Input, z int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.validate(z); err != nil {
		return Result{}, err
	}
	n := len(in.Group)
	d := make([]model.ItemID, 0, z)
	inD := make(model.ItemSet, z)

	if n == 1 {
		for _, it := range in.Lists[in.Group[0]] {
			if len(d) >= z {
				break
			}
			if !inD.Has(it.Item) {
				d = append(d, it.Item)
				inD.Add(it.Item)
			}
		}
		return Evaluate(in, d), nil
	}

	sc := greedyPool.Get().(*greedyScratch)
	defer sc.release()

	// Size the entry arena up front: carving segments out of one
	// preallocated slice keeps them valid (no reallocation mid-build).
	total := 0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y {
				total += len(in.Lists[in.Group[y]])
			}
		}
	}
	if cap(sc.entries) < total {
		sc.entries = make([]rankedEntry, 0, total)
	}

	// Build the per-pair ranked lists in sweep order.
	for x := 0; x < n; x++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		ux := in.Group[x]
		for y := 0; y < n; y++ {
			if x == y {
				continue
			}
			start := len(sc.entries)
			for _, it := range in.Lists[in.Group[y]] {
				rel, def := 0.0, false
				if in.Rel != nil {
					rel, def = in.Rel(ux, it.Item)
				}
				sc.entries = append(sc.entries, rankedEntry{item: it.Item, rel: rel, def: def})
			}
			seg := sc.entries[start:len(sc.entries)]
			sortRanked(seg)
			sc.pairs = append(sc.pairs, pairCursor{entries: seg})
		}
	}

	for len(d) < z {
		added := false
		for p := range sc.pairs {
			if len(d) >= z {
				break
			}
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			c := &sc.pairs[p]
			for c.pos < len(c.entries) && inD.Has(c.entries[c.pos].item) {
				c.pos++
			}
			if c.pos < len(c.entries) {
				d = append(d, c.entries[c.pos].item)
				inD.Add(c.entries[c.pos].item)
				c.pos++
				added = true
			}
		}
		if !added {
			break // every list exhausted; |D| < z is the best we can do
		}
	}
	return Evaluate(in, d), nil
}

// rankedEntry is one candidate of a pair's pre-sorted list.
type rankedEntry struct {
	item model.ItemID
	rel  float64
	def  bool
}

// pairCursor walks one (x, y) ranked list; pos only advances (items
// enter D and never leave, so skipped entries stay skippable).
type pairCursor struct {
	entries []rankedEntry
	pos     int
}

// greedyScratch holds the pooled per-call buffers: the pair cursors and
// the entry arena their lists are carved from.
type greedyScratch struct {
	pairs   []pairCursor
	entries []rankedEntry
}

func (sc *greedyScratch) release() {
	sc.pairs = sc.pairs[:0]
	sc.entries = sc.entries[:0]
	greedyPool.Put(sc)
}

var greedyPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// rankedBefore is bestFor's preference order as a comparator: defined
// relevance beats undefined, then relevance descending, then item ID
// ascending. Relevances are finite (Eq. 1 outputs are ratios of
// bounded sums), so the order is total.
func rankedBefore(a, b rankedEntry) bool {
	if a.def != b.def {
		return a.def
	}
	if a.rel != b.rel {
		return a.rel > b.rel
	}
	return a.item < b.item
}

// sortRanked is an in-place insertion sort by rankedBefore — stable,
// allocation-free, and fast for the top-k-sized lists it sees.
func sortRanked(s []rankedEntry) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && rankedBefore(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// GreedyReference is the retained per-round rescan implementation of
// Algorithm 1 — bestFor re-evaluated over every list each round. It is
// the equivalence oracle (and benchmark baseline) for the rank-order
// Greedy; serving paths should use Greedy/GreedyContext.
func GreedyReference(in Input, z int) (Result, error) {
	if err := in.validate(z); err != nil {
		return Result{}, err
	}
	n := len(in.Group)
	d := make([]model.ItemID, 0, z)
	inD := make(model.ItemSet, z)

	add := func(i model.ItemID) {
		d = append(d, i)
		inD.Add(i)
	}

	if n == 1 {
		for _, it := range in.Lists[in.Group[0]] {
			if len(d) >= z {
				break
			}
			if !inD.Has(it.Item) {
				add(it.Item)
			}
		}
		return Evaluate(in, d), nil
	}

	for len(d) < z {
		added := false
		for x := 0; x < n && len(d) < z; x++ {
			for y := 0; y < n && len(d) < z; y++ {
				if x == y {
					continue
				}
				best, ok := bestFor(in, in.Group[x], in.Lists[in.Group[y]], inD)
				if ok {
					add(best)
					added = true
				}
			}
		}
		if !added {
			break // every list exhausted; |D| < z is the best we can do
		}
	}
	return Evaluate(in, d), nil
}

// bestFor returns the item of list (excluding members of skip) with
// the maximum relevance for user x. Undefined relevances rank below
// every defined one; ties break on ascending item ID so the algorithm
// is deterministic.
func bestFor(in Input, x model.UserID, list []model.ScoredItem, skip model.ItemSet) (model.ItemID, bool) {
	var (
		bestItem model.ItemID
		bestRel  float64
		bestDef  bool
		found    bool
	)
	for _, it := range list {
		if skip.Has(it.Item) {
			continue
		}
		rel, def := 0.0, false
		if in.Rel != nil {
			rel, def = in.Rel(x, it.Item)
		}
		if !found {
			bestItem, bestRel, bestDef, found = it.Item, rel, def, true
			continue
		}
		switch {
		case def && !bestDef:
			bestItem, bestRel, bestDef = it.Item, rel, true
		case def == bestDef && (rel > bestRel || (rel == bestRel && it.Item < bestItem)):
			bestItem, bestRel = it.Item, rel
		}
	}
	return bestItem, found
}

// ---------------------------------------------------------------------------
// Brute force — the exponential baseline of §III.D

// DefaultMaxCombinations bounds BruteForce enumerations; Table II's
// largest point, C(30,16) ≈ 1.45·10⁸, fits comfortably.
const DefaultMaxCombinations = int64(2_000_000_000)

// BruteForce returns the value-maximal z-subset of the candidate items
// (the keys of in.GroupRel, m = |GroupRel|) — the exact optimum the
// naive C(m,z) enumeration finds, with the identical tie-break: among
// equal-value subsets, the lexicographically smallest item-index list
// over the relevance-sorted candidate order.
//
// Implementation: a depth-first walk of the lexicographic combination
// tree with incremental delta evaluation (each node extends the running
// score sum and coverage bitset union by one candidate, so the per-leaf
// cost is O(1) instead of O(z)) and branch-and-bound pruning. The bound
// is optimistic on both factors: the remaining r slots take the r
// highest-scored candidates of the tail (candidates are sorted score-
// descending, so that is a prefix sum), and coverage takes the union of
// everything the tail could add. A subtree is pruned only when this
// bound — inflated by an epsilon absorbing float accumulation error —
// is strictly below the incumbent, so the argmax and its first-found
// (lexicographic) tie-break are provably unchanged from the reference.
// Result.Combinations reports the subsets actually scored, which
// pruning makes ≤ C(m,z).
//
// maxCombos ≤ 0 applies DefaultMaxCombinations; the C(m,z) feasibility
// gate is checked up front, before any enumeration, exactly as the
// naive reference does.
func BruteForce(in Input, z int, maxCombos int64) (Result, error) {
	if err := in.validate(z); err != nil {
		return Result{}, err
	}
	if maxCombos <= 0 {
		maxCombos = DefaultMaxCombinations
	}

	// Deterministic candidate order: group relevance desc, item asc.
	cands := make([]model.ScoredItem, 0, len(in.GroupRel))
	for i, s := range in.GroupRel {
		cands = append(cands, model.ScoredItem{Item: i, Score: s})
	}
	model.SortScoredItems(cands)

	m := len(cands)
	if m == 0 {
		return Result{Items: []model.ItemID{}}, nil
	}
	if z >= m {
		// Only one subset exists: take everything.
		all := model.ItemsOf(cands)
		res := Evaluate(in, all)
		res.Combinations = 1
		return res, nil
	}
	total := CountCombinations(m, z)
	if total < 0 || total > maxCombos {
		return Result{}, fmt.Errorf("%w: C(%d,%d) with limit %d", ErrTooManyCombinations, m, z, maxCombos)
	}

	covers, scores, words := coverageBitsets(in, cands)
	groupSize := float64(len(in.Group))

	// cum[i] = scores[0]+…+scores[i-1]: with candidates score-descending,
	// cum[a+r]-cum[a] is the best possible sum of r picks from the tail
	// starting at a — the score half of the optimistic bound.
	cum := make([]float64, m+1)
	var absScores float64
	for c, s := range scores {
		cum[c+1] = cum[c] + s
		absScores += math.Abs(s)
	}
	// suffixCover[i] = union of covers[i..m-1]: everything the tail from
	// i could still satisfy — the fairness half of the bound.
	suffixCover := make([][]uint64, m+1)
	suffixCover[m] = make([]uint64, words)
	for i := m - 1; i >= 0; i-- {
		sc := make([]uint64, words)
		copy(sc, suffixCover[i+1])
		if cov := covers[i]; cov != nil {
			for w := range cov {
				sc[w] |= cov[w]
			}
		}
		suffixCover[i] = sc
	}
	// slack inflates the bound past any float accumulation error (the
	// prefix-sum difference vs the leaf's left-to-right sum), so pruning
	// can never discard a subtree holding a strictly better leaf. It is
	// orders of magnitude above the worst-case error and orders below
	// any meaningful value difference.
	slack := 1e-9 * (1 + absScores)

	sumStack := make([]float64, z+1)
	satStack := make([]int, z+1)
	unionStack := make([][]uint64, z+1)
	for k := range unionStack {
		unionStack[k] = make([]uint64, words)
	}
	chosen := make([]int, 0, z)
	best := make([]int, 0, z)
	bestValue := math.Inf(-1)
	var bestFair, bestSum float64
	var combos int64

	var dfs func(start, depth int)
	dfs = func(start, depth int) {
		r := z - depth
		for idx := start; idx <= m-r; idx++ {
			// Delta-extend the running prefix by candidate idx. The sum
			// accumulates left to right exactly like the reference's
			// per-leaf loop, so leaf values are bit-identical.
			sum := sumStack[depth] + scores[idx]
			child := unionStack[depth+1]
			copy(child, unionStack[depth])
			sat := satStack[depth]
			if cov := covers[idx]; cov != nil {
				sat = 0
				for w := range child {
					child[w] |= cov[w]
					sat += bits.OnesCount64(child[w])
				}
			}
			if r == 1 {
				combos++
				fair := float64(sat) / groupSize
				if v := fair * sum; v > bestValue {
					bestValue, bestFair, bestSum = v, fair, sum
					best = append(best[:0], chosen...)
					best = append(best, idx)
				}
				continue
			}
			// Optimistic bound over the subtree below idx: r-1 more picks
			// from idx+1…. fairness·sum is maximized by pairing the max
			// of each factor when the sum can be non-negative; when even
			// the max sum is negative, higher fairness only hurts, so the
			// current (minimum possible) fairness bounds it.
			maxSum := sum + (cum[idx+r] - cum[idx+1])
			var ub float64
			if maxSum >= 0 {
				satMax := unionCount(child, suffixCover[idx+1])
				ub = float64(satMax) / groupSize * maxSum
			} else {
				ub = float64(sat) / groupSize * maxSum
			}
			if ub+slack < bestValue {
				continue // provably nothing below beats the incumbent
			}
			sumStack[depth+1], satStack[depth+1] = sum, sat
			chosen = append(chosen, idx)
			dfs(idx+1, depth+1)
			chosen = chosen[:len(chosen)-1]
		}
	}
	dfs(0, 0)

	items := make([]model.ItemID, z)
	for k, c := range best {
		items[k] = cands[c].Item
	}
	return Result{
		Items:        items,
		Fairness:     bestFair,
		SumRelevance: bestSum,
		Value:        bestValue,
		Combinations: combos,
	}, nil
}

// coverageBitsets precomputes, over the sorted candidate order, each
// candidate's group-relevance score and the bitset of members whose
// A_u contains it (nil when it covers nobody).
func coverageBitsets(in Input, cands []model.ScoredItem) (covers [][]uint64, scores []float64, words int) {
	m := len(cands)
	words = (len(in.Group) + 63) / 64
	covers = make([][]uint64, m)
	scores = make([]float64, m)
	memberOf := make(map[model.ItemID][]uint64, m)
	for k, u := range in.Group {
		for _, it := range in.Lists[u] {
			bs, ok := memberOf[it.Item]
			if !ok {
				bs = make([]uint64, words)
				memberOf[it.Item] = bs
			}
			bs[k/64] |= 1 << (k % 64)
		}
	}
	for c, it := range cands {
		scores[c] = it.Score
		covers[c] = memberOf[it.Item] // may be nil: covers nobody
	}
	return covers, scores, words
}

// unionCount returns the popcount of a ∪ b (equal-length words).
func unionCount(a, b []uint64) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] | b[w])
	}
	return n
}

// BruteForceReference is the retained naive enumeration: every C(m,z)
// subset scored from scratch in lexicographic index order. It is the
// equivalence oracle (and benchmark baseline) for the branch-and-bound
// BruteForce; serving paths should use BruteForce.
func BruteForceReference(in Input, z int, maxCombos int64) (Result, error) {
	if err := in.validate(z); err != nil {
		return Result{}, err
	}
	if maxCombos <= 0 {
		maxCombos = DefaultMaxCombinations
	}

	// Deterministic candidate order: group relevance desc, item asc.
	cands := make([]model.ScoredItem, 0, len(in.GroupRel))
	for i, s := range in.GroupRel {
		cands = append(cands, model.ScoredItem{Item: i, Score: s})
	}
	model.SortScoredItems(cands)

	m := len(cands)
	if m == 0 {
		return Result{Items: []model.ItemID{}}, nil
	}
	if z >= m {
		// Only one subset exists: take everything.
		all := model.ItemsOf(cands)
		res := Evaluate(in, all)
		res.Combinations = 1
		return res, nil
	}
	total := CountCombinations(m, z)
	if total < 0 || total > maxCombos {
		return Result{}, fmt.Errorf("%w: C(%d,%d) with limit %d", ErrTooManyCombinations, m, z, maxCombos)
	}

	covers, scores, words := coverageBitsets(in, cands)
	groupSize := float64(len(in.Group))
	union := make([]uint64, words)

	evaluate := func(idx []int) (value float64, fair float64, sum float64) {
		for w := range union {
			union[w] = 0
		}
		sum = 0
		for _, c := range idx {
			sum += scores[c]
			if cov := covers[c]; cov != nil {
				for w := range cov {
					union[w] |= cov[w]
				}
			}
		}
		sat := 0
		for _, w := range union {
			sat += bits.OnesCount64(w)
		}
		fair = float64(sat) / groupSize
		return fair * sum, fair, sum
	}

	// Standard combination enumeration in lexicographic index order.
	idx := make([]int, z)
	for k := range idx {
		idx[k] = k
	}
	best := make([]int, z)
	bestValue := math.Inf(-1)
	var bestFair, bestSum float64
	var combos int64
	for {
		combos++
		v, f, s := evaluate(idx)
		if v > bestValue {
			bestValue, bestFair, bestSum = v, f, s
			copy(best, idx)
		}
		// advance
		k := z - 1
		for k >= 0 && idx[k] == m-z+k {
			k--
		}
		if k < 0 {
			break
		}
		idx[k]++
		for j := k + 1; j < z; j++ {
			idx[j] = idx[j-1] + 1
		}
	}

	items := make([]model.ItemID, z)
	for k, c := range best {
		items[k] = cands[c].Item
	}
	return Result{
		Items:        items,
		Fairness:     bestFair,
		SumRelevance: bestSum,
		Value:        bestValue,
		Combinations: combos,
	}, nil
}

// CountCombinations returns C(m,z), or -1 when it exceeds int64.
func CountCombinations(m, z int) int64 {
	if z < 0 || z > m {
		return 0
	}
	r := new(big.Int).Binomial(int64(m), int64(z))
	if !r.IsInt64() {
		return -1
	}
	return r.Int64()
}

// ---------------------------------------------------------------------------
// Candidate pool helpers

// TopCandidates restricts a full group-relevance map to the m best
// items — the candidate pool "m" of the paper's evaluation (§VI) —
// returning a new map suitable for Input.GroupRel.
func TopCandidates(groupRel map[model.ItemID]float64, m int) map[model.ItemID]float64 {
	top := topk.TopOfMap(groupRel, m)
	out := make(map[model.ItemID]float64, len(top))
	for _, it := range top {
		out[it.Item] = it.Score
	}
	return out
}

// SortedItems returns the input's candidate items by group relevance
// descending (ties on ID), useful for deterministic reporting.
func SortedItems(groupRel map[model.ItemID]float64) []model.ScoredItem {
	out := make([]model.ScoredItem, 0, len(groupRel))
	for i, s := range groupRel {
		out = append(out, model.ScoredItem{Item: i, Score: s})
	}
	model.SortScoredItems(out)
	return out
}

// ListsFromRelevances builds each member's A_u (top-k) from per-member
// relevance maps — glue between package group's Candidates output and
// this package.
func ListsFromRelevances(perUser map[model.UserID]map[model.ItemID]float64, k int) UserLists {
	lists := make(UserLists, len(perUser))
	for u, scores := range perUser {
		lists[u] = topk.TopOfMap(scores, k)
	}
	return lists
}

// Verify that Result is internally consistent (used by tests and the
// eval harness as a sanity check).
func (r Result) Verify() error {
	if math.Abs(r.Value-r.Fairness*r.SumRelevance) > 1e-9 {
		return fmt.Errorf("core: value %v != fairness %v × sum %v", r.Value, r.Fairness, r.SumRelevance)
	}
	if r.Fairness < -1e-12 || r.Fairness > 1+1e-12 {
		return fmt.Errorf("core: fairness %v outside [0,1]", r.Fairness)
	}
	seen := make(model.ItemSet, len(r.Items))
	for _, i := range r.Items {
		if seen.Has(i) {
			return fmt.Errorf("core: duplicate item %s in result", i)
		}
		seen.Add(i)
	}
	return nil
}
