package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fairhealth/internal/model"
)

// TestGreedyMatchesReference pins the rank-order Greedy to the
// per-round rescan reference: identical selection (order included) and
// identical scores across random groups, list shapes, and z values.
func TestGreedyMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng, 1+rng.Intn(6), 5+rng.Intn(30))
		z := 1 + rng.Intn(12)
		got, err := Greedy(in, z)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := GreedyReference(in, z)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d z=%d: rank-order %+v != reference %+v", seed, z, got, want)
		}
	}
}

// TestGreedyScratchReuse reruns the same problem many times: the
// pooled scratch must never leak state between calls.
func TestGreedyScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInput(rng, 4, 20)
	first, err := Greedy(in, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		r, err := Greedy(in, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, first) {
			t.Fatalf("run %d diverged: %+v != %+v", k, r, first)
		}
	}
}

// TestGreedyNoRelFn covers the in.Rel == nil path (all relevances
// undefined → pure item-ID order) against the reference.
func TestGreedyNoRelFn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for seed := 0; seed < 10; seed++ {
		in := randomInput(rng, 2+rng.Intn(4), 10)
		in.Rel = nil
		got, err := Greedy(in, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GreedyReference(in, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: %+v != %+v", seed, got, want)
		}
	}
}

// sweepInput builds a brute-force problem with exactly m candidates: a
// group of 8 members, per-member top-5 lists drawn from the candidate
// pool, and group relevances that are non-negative on even seeds and
// mixed-sign on odd seeds (exercising the negative-sum branch of the
// branch-and-bound bound).
func sweepInput(seed int64, m int) Input {
	rng := rand.New(rand.NewSource(seed))
	g := make(model.Group, 8)
	for k := range g {
		g[k] = model.UserID(fmt.Sprintf("u%d", k))
	}
	perUser := make(map[model.UserID]map[model.ItemID]float64, len(g))
	for _, u := range g {
		scores := make(map[model.ItemID]float64)
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.6 {
				scores[model.ItemID(fmt.Sprintf("d%02d", i))] = 1 + 4*rng.Float64()
			}
		}
		perUser[u] = scores
	}
	groupRel := make(map[model.ItemID]float64, m)
	for i := 0; i < m; i++ {
		s := 5 * rng.Float64()
		if seed%2 == 1 {
			s -= 2.5 // mixed sign
		}
		groupRel[model.ItemID(fmt.Sprintf("d%02d", i))] = s
	}
	return Input{
		Group:    g,
		Lists:    ListsFromRelevances(perUser, 5),
		GroupRel: groupRel,
		Rel: func(u model.UserID, i model.ItemID) (float64, bool) {
			s, ok := perUser[u][i]
			return s, ok
		},
	}
}

// TestBruteForceBBSweepMatchesNaive is the satellite regression: the
// branch-and-bound solver returns the identical subset — same items,
// same order, bit-identical scores, so the first-found lexicographic
// tie-break survives pruning — as the naive full enumeration across a
// seeded sweep of m∈{10,20,30} × z∈{4,8,12}. The most expensive naive
// cell (m=30, z=12 ≈ 8.6·10⁷ subsets) is skipped under -short.
func TestBruteForceBBSweepMatchesNaive(t *testing.T) {
	for _, m := range []int{10, 20, 30} {
		for _, z := range []int{4, 8, 12} {
			if testing.Short() && m == 30 && z == 12 {
				continue
			}
			for seed := int64(0); seed < 2; seed++ {
				in := sweepInput(seed, m)
				got, err := BruteForce(in, z, 0)
				if err != nil {
					t.Fatalf("m=%d z=%d seed=%d: %v", m, z, seed, err)
				}
				want, err := BruteForceReference(in, z, 0)
				if err != nil {
					t.Fatalf("m=%d z=%d seed=%d: reference: %v", m, z, seed, err)
				}
				if !equalItems(got.Items, want.Items) ||
					got.Fairness != want.Fairness ||
					got.SumRelevance != want.SumRelevance ||
					got.Value != want.Value {
					t.Errorf("m=%d z=%d seed=%d: B&B %+v != naive %+v", m, z, seed, got, want)
				}
				if got.Combinations < 1 || (want.Combinations > 0 && got.Combinations > want.Combinations) {
					t.Errorf("m=%d z=%d seed=%d: scored %d subsets, naive scored %d",
						m, z, seed, got.Combinations, want.Combinations)
				}
				if err := got.Verify(); err != nil {
					t.Errorf("m=%d z=%d seed=%d: %v", m, z, seed, err)
				}
			}
		}
	}
}

// TestBruteForceBBRespectsMaxCombos: the feasibility gate still fires
// on the up-front C(m,z), before any pruning could shrink the count —
// the API contract (infeasible → 400 through /v1) depends on it.
func TestBruteForceBBRespectsMaxCombos(t *testing.T) {
	in := sweepInput(1, 30)
	if _, err := BruteForce(in, 12, 1000); err == nil {
		t.Fatal("C(30,12) under maxCombos=1000 did not error")
	} else if !errors.Is(err, ErrTooManyCombinations) {
		t.Fatalf("error = %v, want %v", err, ErrTooManyCombinations)
	}
	// The same budget is accepted when C(m,z) fits it.
	if _, err := BruteForce(in, 1, 1000); err != nil {
		t.Fatalf("C(30,1)=30 under maxCombos=1000: %v", err)
	}
}
