package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fairhealth/internal/model"
)

func si(item string, score float64) model.ScoredItem {
	return model.ScoredItem{Item: model.ItemID(item), Score: score}
}

func ids(items ...string) []model.ItemID {
	out := make([]model.ItemID, len(items))
	for k, i := range items {
		out[k] = model.ItemID(i)
	}
	return out
}

// relFromLists derives a RelevanceFn from per-user scored lists: the
// relevance of an item for a user is its score in the user's own list,
// undefined otherwise.
func relFromLists(lists UserLists) RelevanceFn {
	return func(u model.UserID, i model.ItemID) (float64, bool) {
		for _, it := range lists[u] {
			if it.Item == i {
				return it.Score, true
			}
		}
		return 0, false
	}
}

func TestFairnessDefinition(t *testing.T) {
	g := model.Group{"a", "b", "c"}
	lists := UserLists{
		"a": {si("x", 5), si("y", 4)},
		"b": {si("y", 5)},
		"c": {si("z", 5)},
	}
	cases := []struct {
		d    []model.ItemID
		want float64
	}{
		{ids(), 0},
		{ids("x"), 1.0 / 3},      // only a satisfied
		{ids("y"), 2.0 / 3},      // a and b
		{ids("x", "z"), 2.0 / 3}, // a and c
		{ids("y", "z"), 1},
		{ids("q"), 0}, // item in nobody's list
	}
	for _, c := range cases {
		if got := Fairness(g, lists, c.d); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Fairness(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestFairnessEdgeCases(t *testing.T) {
	if got := Fairness(nil, nil, ids("x")); got != 0 {
		t.Errorf("empty group fairness = %v, want 0", got)
	}
	// member with empty list can never be satisfied
	g := model.Group{"a", "b"}
	lists := UserLists{"a": {si("x", 1)}}
	if got := Fairness(g, lists, ids("x")); got != 0.5 {
		t.Errorf("fairness with empty member list = %v, want 0.5", got)
	}
}

func TestEvaluate(t *testing.T) {
	in := Input{
		Group:    model.Group{"a", "b"},
		Lists:    UserLists{"a": {si("x", 5)}, "b": {si("y", 5)}},
		GroupRel: map[model.ItemID]float64{"x": 3, "y": 2, "w": 4},
	}
	r := Evaluate(in, ids("x", "w"))
	if r.Fairness != 0.5 {
		t.Errorf("fairness = %v, want 0.5", r.Fairness)
	}
	if r.SumRelevance != 7 {
		t.Errorf("sum = %v, want 7", r.SumRelevance)
	}
	if r.Value != 3.5 {
		t.Errorf("value = %v, want 3.5", r.Value)
	}
	if err := r.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// items missing from GroupRel contribute 0
	r2 := Evaluate(in, ids("x", "mystery"))
	if r2.SumRelevance != 3 {
		t.Errorf("sum with unknown item = %v, want 3", r2.SumRelevance)
	}
}

func TestGreedyPairSelection(t *testing.T) {
	// Two members. A_a has items the paper's loop must scan for b's
	// benefit and vice versa. With x=a, y=b the pick from A_b is the
	// item maximizing relevance(a, ·).
	lists := UserLists{
		"a": {si("a1", 5), si("a2", 4)},
		"b": {si("b1", 5), si("b2", 4)},
	}
	// cross relevances: a loves b2, b loves a2
	rel := func(u model.UserID, i model.ItemID) (float64, bool) {
		table := map[string]float64{
			"a|b1": 1, "a|b2": 4.5,
			"b|a1": 2, "b|a2": 4.8,
		}
		s, ok := table[string(u)+"|"+string(i)]
		return s, ok
	}
	in := Input{
		Group:    model.Group{"a", "b"},
		Lists:    lists,
		GroupRel: map[model.ItemID]float64{"a1": 1, "a2": 1, "b1": 1, "b2": 1},
		Rel:      rel,
	}
	res, err := Greedy(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	// sweep order: (x=a,y=b) picks b2 (rel 4.5 > 1); (x=b,y=a) picks a2.
	if !reflect.DeepEqual(res.Items, ids("b2", "a2")) {
		t.Errorf("Items = %v, want [b2 a2]", res.Items)
	}
	if res.Fairness != 1 {
		t.Errorf("fairness = %v, want 1", res.Fairness)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestGreedySkipsItemsAlreadyChosen(t *testing.T) {
	// Both members' lists contain the same single hot item; the second
	// pick must move on to the next-best rather than stall.
	lists := UserLists{
		"a": {si("hot", 5), si("a2", 1)},
		"b": {si("hot", 5), si("b2", 1)},
	}
	in := Input{
		Group:    model.Group{"a", "b"},
		Lists:    lists,
		GroupRel: map[model.ItemID]float64{"hot": 5, "a2": 1, "b2": 1},
		Rel:      relFromLists(lists),
	}
	res, err := Greedy(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Fatalf("Items = %v, want 3 distinct", res.Items)
	}
	seen := model.NewItemSet(res.Items...)
	if len(seen) != 3 || !seen.Has("hot") {
		t.Errorf("Items = %v", res.Items)
	}
}

func TestGreedyTerminatesWhenExhausted(t *testing.T) {
	lists := UserLists{
		"a": {si("x", 5)},
		"b": {si("y", 5)},
	}
	in := Input{
		Group:    model.Group{"a", "b"},
		Lists:    lists,
		GroupRel: map[model.ItemID]float64{"x": 1, "y": 1},
		Rel:      relFromLists(lists),
	}
	res, err := Greedy(in, 10) // z far larger than available items
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Errorf("Items = %v, want the 2 available", res.Items)
	}
	if res.Fairness != 1 {
		t.Errorf("fairness = %v, want 1", res.Fairness)
	}
}

func TestGreedySingletonGroup(t *testing.T) {
	lists := UserLists{"solo": {si("x", 5), si("y", 4), si("w", 3)}}
	in := Input{
		Group:    model.Group{"solo"},
		Lists:    lists,
		GroupRel: map[model.ItemID]float64{"x": 5, "y": 4, "w": 3},
	}
	res, err := Greedy(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Items, ids("x", "y")) {
		t.Errorf("Items = %v, want [x y]", res.Items)
	}
	if res.Fairness != 1 {
		t.Errorf("singleton fairness = %v, want 1", res.Fairness)
	}
}

func TestGreedyUndefinedRelevanceRanksLast(t *testing.T) {
	lists := UserLists{
		"a": {si("a1", 5)},
		"b": {si("known", 1), si("mystery", 5)},
	}
	rel := func(u model.UserID, i model.ItemID) (float64, bool) {
		if u == "a" && i == "known" {
			return 0.5, true
		}
		return 0, false // a has no estimate for mystery
	}
	in := Input{
		Group:    model.Group{"a", "b"},
		Lists:    lists,
		GroupRel: map[model.ItemID]float64{"a1": 1, "known": 1, "mystery": 1},
		Rel:      rel,
	}
	res, err := Greedy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items[0] != "known" {
		t.Errorf("first pick = %v, want known (defined relevance beats undefined)", res.Items)
	}
}

func TestGreedyNilRelDeterministic(t *testing.T) {
	lists := UserLists{
		"a": {si("z", 5), si("m", 4)},
		"b": {si("q", 5), si("b", 4)},
	}
	in := Input{
		Group:    model.Group{"a", "b"},
		Lists:    lists,
		GroupRel: map[model.ItemID]float64{},
	}
	r1, err := Greedy(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Greedy(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Items, r2.Items) {
		t.Errorf("nondeterministic: %v vs %v", r1.Items, r2.Items)
	}
	// with all relevances undefined, ties break on ascending item ID
	if r1.Items[0] != "b" { // from A_b: min(q, b) = b
		t.Errorf("first pick = %v, want b (ID tie-break)", r1.Items)
	}
}

func TestGreedyValidation(t *testing.T) {
	in := Input{Group: model.Group{"a"}, Lists: UserLists{}, GroupRel: map[model.ItemID]float64{}}
	if _, err := Greedy(Input{}, 3); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("empty group: %v", err)
	}
	if _, err := Greedy(in, 0); !errors.Is(err, ErrBadZ) {
		t.Errorf("z=0: %v", err)
	}
}

// TestBruteForceTradesRelevanceForFairness pins the core trade-off on
// a worked example: the pair {x,w} has the highest raw relevance but
// covers only member a; {x,y} sacrifices relevance for fairness 1 and
// wins on value (5.1 > 4.95).
func TestBruteForceTradesRelevanceForFairness(t *testing.T) {
	in := Input{
		Group: model.Group{"a", "b"},
		Lists: UserLists{
			"a": {si("x", 5)},
			"b": {si("y", 5)},
		},
		GroupRel: map[model.ItemID]float64{"x": 5, "w": 4.9, "y": 0.1},
	}
	res, err := BruteForce(in, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := model.NewItemSet(res.Items...)
	if !got.Has("x") || !got.Has("y") {
		t.Errorf("Items = %v, want {x,y}", res.Items)
	}
	if res.Fairness != 1 || math.Abs(res.Value-5.1) > 1e-12 {
		t.Errorf("fairness=%v value=%v, want 1, 5.1", res.Fairness, res.Value)
	}
	// Combinations counts subsets actually scored: pruning keeps it in
	// [1, C(3,2)], and the reference scores all three.
	if res.Combinations < 1 || res.Combinations > 3 {
		t.Errorf("combinations = %d, want within [1, 3]", res.Combinations)
	}
	ref, err := BruteForceReference(in, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Combinations != 3 { // C(3,2) — the naive reference prunes nothing
		t.Errorf("reference combinations = %d, want 3", ref.Combinations)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestBruteForceCombinationCount(t *testing.T) {
	groupRel := make(map[model.ItemID]float64)
	for k := 0; k < 10; k++ {
		groupRel[model.ItemID(fmt.Sprintf("d%d", k))] = float64(k)
	}
	in := Input{
		Group:    model.Group{"a"},
		Lists:    UserLists{"a": {si("d9", 9)}},
		GroupRel: groupRel,
	}
	res, err := BruteForce(in, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Branch-and-bound scores only the subsets it cannot prune; the
	// count must stay positive and bounded by C(10,4), which the naive
	// reference scores in full.
	if want := CountCombinations(10, 4); res.Combinations < 1 || res.Combinations > want {
		t.Errorf("combinations = %d, want within [1, %d]", res.Combinations, want)
	}
	ref, err := BruteForceReference(in, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := CountCombinations(10, 4); ref.Combinations != want {
		t.Errorf("reference combinations = %d, want %d", ref.Combinations, want)
	}
	if res.Value != ref.Value || !equalItems(res.Items, ref.Items) {
		t.Errorf("B&B result %v (value %v) != reference %v (value %v)", res.Items, res.Value, ref.Items, ref.Value)
	}
}

func equalItems(a, b []model.ItemID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBruteForceZGeqM(t *testing.T) {
	in := Input{
		Group:    model.Group{"a"},
		Lists:    UserLists{"a": {si("x", 1)}},
		GroupRel: map[model.ItemID]float64{"x": 1, "y": 2},
	}
	res, err := BruteForce(in, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 || res.Combinations != 1 {
		t.Errorf("res = %+v, want both items, 1 combination", res)
	}
}

func TestBruteForceEmptyCandidates(t *testing.T) {
	in := Input{Group: model.Group{"a"}, Lists: UserLists{}, GroupRel: map[model.ItemID]float64{}}
	res, err := BruteForce(in, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Errorf("Items = %v, want empty", res.Items)
	}
}

func TestBruteForceCombinationLimit(t *testing.T) {
	groupRel := make(map[model.ItemID]float64)
	for k := 0; k < 30; k++ {
		groupRel[model.ItemID(fmt.Sprintf("d%02d", k))] = float64(k)
	}
	in := Input{Group: model.Group{"a"}, Lists: UserLists{}, GroupRel: groupRel}
	if _, err := BruteForce(in, 15, 1000); !errors.Is(err, ErrTooManyCombinations) {
		t.Errorf("limit: %v", err)
	}
}

func TestBruteForceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInput(rng, 3, 12)
	r1, err := BruteForce(in, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BruteForce(in, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("nondeterministic brute force: %+v vs %+v", r1, r2)
	}
}

func TestCountCombinations(t *testing.T) {
	cases := []struct {
		m, z int
		want int64
	}{
		{10, 4, 210},
		{20, 8, 125970},
		{30, 12, 86493225},
		{30, 16, 145422675},
		{5, 0, 1},
		{5, 5, 1},
		{4, 5, 0},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := CountCombinations(c.m, c.z); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.m, c.z, got, c.want)
		}
	}
	if got := CountCombinations(100, 50); got != -1 {
		t.Errorf("C(100,50) = %d, want -1 (overflow)", got)
	}
}

func TestTopCandidates(t *testing.T) {
	groupRel := map[model.ItemID]float64{"a": 1, "b": 3, "c": 2, "d": 5}
	top := TopCandidates(groupRel, 2)
	if len(top) != 2 {
		t.Fatalf("TopCandidates = %v", top)
	}
	if _, ok := top["d"]; !ok {
		t.Error("missing best item d")
	}
	if _, ok := top["b"]; !ok {
		t.Error("missing second item b")
	}
}

func TestSortedItems(t *testing.T) {
	got := SortedItems(map[model.ItemID]float64{"a": 1, "b": 3, "c": 3})
	want := []model.ScoredItem{si("b", 3), si("c", 3), si("a", 1)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedItems = %v, want %v", got, want)
	}
}

func TestListsFromRelevances(t *testing.T) {
	per := map[model.UserID]map[model.ItemID]float64{
		"a": {"x": 3, "y": 5, "w": 1},
	}
	lists := ListsFromRelevances(per, 2)
	if !reflect.DeepEqual(lists["a"], []model.ScoredItem{si("y", 5), si("x", 3)}) {
		t.Errorf("lists = %v", lists)
	}
}

// ---------------------------------------------------------------------------
// randomized / property tests

// randomInput builds a consistent random problem: n members, a pool of
// poolSize items, per-user relevance for a random subset, A_u = top-5,
// GroupRel = mean of defined user scores.
func randomInput(rng *rand.Rand, n, poolSize int) Input {
	g := make(model.Group, n)
	for k := range g {
		g[k] = model.UserID(fmt.Sprintf("u%d", k))
	}
	perUser := make(map[model.UserID]map[model.ItemID]float64, n)
	for _, u := range g {
		scores := make(map[model.ItemID]float64)
		for i := 0; i < poolSize; i++ {
			if rng.Float64() < 0.7 {
				scores[model.ItemID(fmt.Sprintf("d%02d", i))] = 1 + 4*rng.Float64()
			}
		}
		perUser[u] = scores
	}
	lists := ListsFromRelevances(perUser, 5)
	groupRel := make(map[model.ItemID]float64)
	for i := 0; i < poolSize; i++ {
		item := model.ItemID(fmt.Sprintf("d%02d", i))
		var sum float64
		var cnt int
		for _, u := range g {
			if s, ok := perUser[u][item]; ok {
				sum += s
				cnt++
			}
		}
		if cnt == len(g) { // candidates need all members defined (Def. 2 domain)
			groupRel[item] = sum / float64(cnt)
		}
	}
	return Input{
		Group:    g,
		Lists:    lists,
		GroupRel: groupRel,
		Rel: func(u model.UserID, i model.ItemID) (float64, bool) {
			s, ok := perUser[u][i]
			return s, ok
		},
	}
}

// TestProposition1 verifies the paper's Proposition 1: when z ≥ |G|
// and every member has a non-empty list, Algorithm 1 achieves
// fairness 1.
func TestProposition1(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		in := randomInput(rng, n, 15+rng.Intn(20))
		nonEmpty := true
		for _, u := range in.Group {
			if len(in.Lists[u]) == 0 {
				nonEmpty = false
			}
		}
		if !nonEmpty {
			continue
		}
		z := n + rng.Intn(5)
		res, err := Greedy(in, z)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fairness != 1 {
			t.Errorf("seed %d: Proposition 1 violated: n=%d z=%d fairness=%v items=%v",
				seed, n, z, res.Fairness, res.Items)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestBruteForceDominatesGreedy: the exhaustive optimum can never be
// beaten by the heuristic on the same candidate pool.
func TestBruteForceDominatesGreedy(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		in := randomInput(rng, n, 10+rng.Intn(4))
		// keep greedy comparable: it only picks from lists, whose items
		// may be missing from GroupRel (contributing 0) — that's fine,
		// the brute force simply has a richer pool.
		z := 1 + rng.Intn(4)
		if CountCombinations(len(in.GroupRel), z) > 50_000 {
			continue
		}
		bf, err := BruteForce(in, z, 0)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := Greedy(in, z)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Value > bf.Value+1e-9 {
			t.Errorf("seed %d: greedy value %v beats brute force %v (z=%d)", seed, gr.Value, bf.Value, z)
		}
		if err := bf.Verify(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestBruteForceMatchesNaiveReference cross-checks the bitmask
// evaluation against a direct Evaluate() of every subset on tiny
// instances.
func TestBruteForceMatchesNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng, 2+rng.Intn(2), 7)
		z := 1 + rng.Intn(3)
		if len(in.GroupRel) < z {
			continue
		}
		bf, err := BruteForce(in, z, 0)
		if err != nil {
			t.Fatal(err)
		}
		// naive: enumerate with Evaluate
		cands := SortedItems(in.GroupRel)
		bestVal := math.Inf(-1)
		var rec func(start int, chosen []model.ItemID)
		rec = func(start int, chosen []model.ItemID) {
			if len(chosen) == z {
				if v := Evaluate(in, chosen).Value; v > bestVal {
					bestVal = v
				}
				return
			}
			for c := start; c < len(cands); c++ {
				rec(c+1, append(chosen, cands[c].Item))
			}
		}
		rec(0, nil)
		if math.Abs(bf.Value-bestVal) > 1e-9 {
			t.Errorf("seed %d: brute force value %v != naive %v", seed, bf.Value, bestVal)
		}
	}
}

// TestGreedyInvariants: results always verify, never exceed z items,
// and never contain duplicates.
func TestGreedyInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng, 1+rng.Intn(6), 5+rng.Intn(30))
		z := 1 + rng.Intn(12)
		res, err := Greedy(in, z)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Items) > z {
			t.Errorf("seed %d: %d items exceed z=%d", seed, len(res.Items), z)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGreedyContextCancelled(t *testing.T) {
	in := Input{
		Group:    model.Group{"a", "b"},
		Lists:    UserLists{"a": {si("x", 5), si("w", 4)}, "b": {si("y", 5), si("v", 3)}},
		GroupRel: map[model.ItemID]float64{"x": 3, "y": 2, "w": 4, "v": 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GreedyContext(ctx, in, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// nil context degrades to Background, matching Greedy.
	fromNil, err := GreedyContext(nil, in, 4)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Greedy(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromNil, plain) {
		t.Errorf("GreedyContext(nil) = %+v, Greedy = %+v", fromNil, plain)
	}
}
