// Package clustering implements user clustering for fast peer
// discovery. The paper's related work (§VII) builds on Ntoutsi et al.
// [17], which "employ[s] full-dimensional clustering" to pre-partition
// users so that peer search (Def. 1) scans one cluster instead of the
// whole user base. This package provides seeded spherical k-means over
// mean-centered sparse rating vectors, plus the glue that narrows a
// cf.Recommender's candidate scan to the query user's cluster.
//
// Distances use cosine over mean-centered vectors (adjusted cosine),
// the same signal Pearson similarity measures, so cluster locality
// aligns with peer locality.
package clustering

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fairhealth/internal/model"
	"fairhealth/internal/ratings"
)

// Common errors.
var (
	// ErrEmptyStore is returned when the store has no users.
	ErrEmptyStore = errors.New("clustering: empty rating store")
	// ErrBadK is returned for k < 1.
	ErrBadK = errors.New("clustering: k must be ≥ 1")
)

// Config parameterizes KMeans.
type Config struct {
	// K is the number of clusters (clamped to the user count).
	K int
	// MaxIter bounds the Lloyd iterations (default 50).
	MaxIter int
	// Seed drives initialization; equal seeds → identical clusterings.
	Seed int64
}

// Result is a finished clustering.
type Result struct {
	// Assignment maps every user to a cluster in [0, K).
	Assignment map[model.UserID]int
	// Members lists each cluster's users, ascending.
	Members [][]model.UserID
	// Iterations actually run until convergence.
	Iterations int
	// Inertia is the final total within-cluster dissimilarity
	// Σ (1 − cos(u, centroid)).
	Inertia float64

	// centroids are retained so single users can be reassigned
	// incrementally (Reassign) and nearest-neighbor clusters ranked
	// (NearestClusters) without a full re-run.
	centroids []vector
}

// VectorFunc produces the sparse feature vector a user is clustered
// by, as a map from feature key to weight. Rating instantiations key
// by item; profile instantiations key terms by casting to ItemID.
// A nil or empty map is a zero vector (cosine 0 to everything).
type VectorFunc func(model.UserID) map[model.ItemID]float64

// RatingVectors adapts a ratings store into a VectorFunc over
// mean-centered rating vectors — the adjusted-cosine signal Pearson
// similarity measures.
func RatingVectors(store *ratings.Store) VectorFunc {
	return func(u model.UserID) map[model.ItemID]float64 {
		mean, _ := store.MeanRating(u)
		w := make(map[model.ItemID]float64)
		store.VisitUserRatings(u, func(i model.ItemID, r model.Rating) bool {
			if v := float64(r) - mean; v != 0 {
				w[i] = v
			}
			return true
		})
		return w
	}
}

// vector is a sparse mean-centered rating vector stored as parallel
// item-sorted slices, so dot products are merge joins with a
// deterministic summation order (map iteration would make inertia
// drift across runs in the last float bit).
type vector struct {
	items []model.ItemID // ascending
	vals  []float64
	norm  float64
}

func vectorFromMap(w map[model.ItemID]float64) vector {
	items := make([]model.ItemID, 0, len(w))
	for i := range w {
		items = append(items, i)
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
	vals := make([]float64, len(items))
	var sq float64
	for k, i := range items {
		vals[k] = w[i]
		sq += w[i] * w[i]
	}
	return vector{items: items, vals: vals, norm: math.Sqrt(sq)}
}

func (v vector) cosine(c vector) float64 {
	if v.norm == 0 || c.norm == 0 {
		return 0
	}
	var dot float64
	a, b := 0, 0
	for a < len(v.items) && b < len(c.items) {
		switch {
		case v.items[a] == c.items[b]:
			dot += v.vals[a] * c.vals[b]
			a++
			b++
		case v.items[a] < c.items[b]:
			a++
		default:
			b++
		}
	}
	return dot / (v.norm * c.norm)
}

// KMeans clusters every user in the store over mean-centered rating
// vectors. It is a thin wrapper over KMeansVectors with RatingVectors.
func KMeans(store *ratings.Store, cfg Config) (*Result, error) {
	return KMeansVectors(store.Users(), RatingVectors(store), cfg)
}

// KMeansVectors clusters the given users by the vectors vf produces.
// The user list is processed in the given order; callers that want
// run-to-run determinism pass a sorted list (Store.Users is ascending).
func KMeansVectors(users []model.UserID, vf VectorFunc, cfg Config) (*Result, error) {
	if len(users) == 0 {
		return nil, ErrEmptyStore
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadK, cfg.K)
	}
	k := cfg.K
	if k > len(users) {
		k = len(users)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	vecs := make([]vector, len(users))
	for idx, u := range users {
		vecs[idx] = vectorFromMap(vf(u))
	}

	// k-means++-style seeding: first centroid uniform, then farthest-
	// biased picks (probability ∝ 1 − best cosine so far).
	centroids := make([]vector, 0, k)
	first := rng.Intn(len(users))
	centroids = append(centroids, cloneVector(vecs[first]))
	bestSim := make([]float64, len(users))
	for i := range bestSim {
		bestSim[i] = vecs[i].cosine(centroids[0])
	}
	for len(centroids) < k {
		var total float64
		weights := make([]float64, len(users))
		for i := range users {
			w := 1 - bestSim[i]
			if w < 0 {
				w = 0
			}
			weights[i] = w
			total += w
		}
		pick := 0
		if total > 0 {
			r := rng.Float64() * total
			for i, w := range weights {
				r -= w
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(len(users))
		}
		centroids = append(centroids, cloneVector(vecs[pick]))
		for i := range users {
			if s := vecs[i].cosine(centroids[len(centroids)-1]); s > bestSim[i] {
				bestSim[i] = s
			}
		}
	}

	assign := make([]int, len(users))
	for i := range assign {
		assign[i] = -1
	}
	iterations := 0
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter + 1
		changed := false
		for i, v := range vecs {
			best, bestScore := 0, math.Inf(-1)
			for c, cent := range centroids {
				s := v.cosine(cent)
				// deterministic tie-break: lower cluster index wins
				if s > bestScore {
					best, bestScore = c, s
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// recompute centroids as the mean of member vectors
		sums := make([]map[model.ItemID]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make(map[model.ItemID]float64)
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for k, item := range v.items {
				sums[c][item] += v.vals[k]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// empty cluster: reseed with the point farthest from
				// its centroid (deterministic: first minimal cosine)
				worst, worstScore := 0, math.Inf(1)
				for i, v := range vecs {
					if s := v.cosine(centroids[assign[i]]); s < worstScore {
						worst, worstScore = i, s
					}
				}
				centroids[c] = cloneVector(vecs[worst])
				continue
			}
			w := make(map[model.ItemID]float64, len(sums[c]))
			for item, s := range sums[c] {
				if v := s / float64(counts[c]); v != 0 {
					w[item] = v
				}
			}
			centroids[c] = vectorFromMap(w)
		}
	}

	res := &Result{
		Assignment: make(map[model.UserID]int, len(users)),
		Members:    make([][]model.UserID, k),
		Iterations: iterations,
		centroids:  centroids,
	}
	for i, u := range users {
		c := assign[i]
		res.Assignment[u] = c
		res.Members[c] = append(res.Members[c], u)
		res.Inertia += 1 - vecs[i].cosine(centroids[c])
	}
	for c := range res.Members {
		sort.Slice(res.Members[c], func(a, b int) bool { return res.Members[c][a] < res.Members[c][b] })
	}
	return res, nil
}

func cloneVector(v vector) vector {
	return vector{
		items: append([]model.ItemID(nil), v.items...),
		vals:  append([]float64(nil), v.vals...),
		norm:  v.norm,
	}
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Members) }

// ClusterOf returns the user's cluster, or -1 when unknown.
func (r *Result) ClusterOf(u model.UserID) int {
	c, ok := r.Assignment[u]
	if !ok {
		return -1
	}
	return c
}

// CandidateSource narrows peer discovery (Def. 1) to the query user's
// cluster — plug it into cf.Recommender.Candidates. Unknown users fall
// back to nil (the recommender then scans everyone).
func (r *Result) CandidateSource() func(model.UserID) []model.UserID {
	return func(u model.UserID) []model.UserID {
		c, ok := r.Assignment[u]
		if !ok {
			return nil
		}
		return r.Members[c]
	}
}

// Reassign recomputes one user's cluster from the retained centroids
// — the cheap incremental-maintenance step after a write touches that
// user's vector. Centroids themselves are not moved (full rebuilds
// handle drift); ties break deterministically to the lower cluster
// index, matching the Lloyd loop. It returns true when the user moved
// (or was newly added). Membership lists stay sorted ascending.
func (r *Result) Reassign(u model.UserID, vf VectorFunc) bool {
	if len(r.centroids) == 0 {
		return false
	}
	v := vectorFromMap(vf(u))
	best, bestScore := 0, math.Inf(-1)
	for c, cent := range r.centroids {
		if s := v.cosine(cent); s > bestScore {
			best, bestScore = c, s
		}
	}
	prev, known := r.Assignment[u]
	if known && prev == best {
		return false
	}
	if known {
		r.Members[prev] = removeSorted(r.Members[prev], u)
	}
	r.Assignment[u] = best
	r.Members[best] = insertSorted(r.Members[best], u)
	return true
}

// NearestClusters ranks the n clusters nearest to cluster c by
// centroid cosine, descending (c itself excluded). Ties break to the
// lower cluster index. Used by approx mode to widen the candidate set
// beyond the query user's own cluster.
func (r *Result) NearestClusters(c, n int) []int {
	if c < 0 || c >= len(r.centroids) || n <= 0 {
		return nil
	}
	type scored struct {
		c   int
		sim float64
	}
	others := make([]scored, 0, len(r.centroids)-1)
	for i, cent := range r.centroids {
		if i == c {
			continue
		}
		others = append(others, scored{c: i, sim: r.centroids[c].cosine(cent)})
	}
	sort.SliceStable(others, func(a, b int) bool {
		if others[a].sim != others[b].sim {
			return others[a].sim > others[b].sim
		}
		return others[a].c < others[b].c
	})
	if n > len(others) {
		n = len(others)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = others[i].c
	}
	return out
}

func removeSorted(s []model.UserID, u model.UserID) []model.UserID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= u })
	if i < len(s) && s[i] == u {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

func insertSorted(s []model.UserID, u model.UserID) []model.UserID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= u })
	if i < len(s) && s[i] == u {
		return s
	}
	var zero model.UserID
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = u
	return s
}

// Purity scores the clustering against ground-truth labels: the
// fraction of users whose cluster's majority label matches their own.
// Used by tests and ablations on synthetic data.
func (r *Result) Purity(truth map[model.UserID]int) float64 {
	if len(r.Assignment) == 0 {
		return 0
	}
	correct := 0
	for _, members := range r.Members {
		counts := map[int]int{}
		for _, u := range members {
			counts[truth[u]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(r.Assignment))
}
