package clustering

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"fairhealth/internal/cf"
	"fairhealth/internal/dataset"
	"fairhealth/internal/model"
	"fairhealth/internal/ratings"
	"fairhealth/internal/simfn"
)

func clusteredDataset(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Seed: seed, Users: 60, Items: 90, RatingsPerUser: 40, Clusters: 3, Noise: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func truthOf(ds *dataset.Dataset) map[model.UserID]int {
	truth := make(map[model.UserID]int, len(ds.ClusterOf))
	for u, c := range ds.ClusterOf {
		truth[u] = c
	}
	return truth
}

func TestKMeansRecoversLatentClusters(t *testing.T) {
	ds := clusteredDataset(t, 1)
	res, err := KMeans(ds.Ratings, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d", res.K())
	}
	purity := res.Purity(truthOf(ds))
	if purity < 0.9 {
		t.Errorf("purity = %v, want ≥ 0.9 (clusters are well separated by construction)", purity)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	ds := clusteredDataset(t, 2)
	a, err := KMeans(ds.Ratings, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(ds.Ratings, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Assignment, b.Assignment) {
		t.Error("same seed produced different clusterings")
	}
	if a.Inertia != b.Inertia || a.Iterations != b.Iterations {
		t.Errorf("metadata differs: %v/%v vs %v/%v", a.Inertia, a.Iterations, b.Inertia, b.Iterations)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(ratings.New(), Config{K: 2}); !errors.Is(err, ErrEmptyStore) {
		t.Errorf("empty store: %v", err)
	}
	st := ratings.New()
	if err := st.Add("u", "d", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := KMeans(st, Config{K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
}

func TestKMeansClampsKToUsers(t *testing.T) {
	st := ratings.New()
	for _, u := range []string{"a", "b"} {
		if err := st.Add(model.UserID(u), "d1", 3); err != nil {
			t.Fatal(err)
		}
		if err := st.Add(model.UserID(u), "d2", 5); err != nil {
			t.Fatal(err)
		}
	}
	res, err := KMeans(st, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Errorf("K = %d, want clamped to 2", res.K())
	}
	total := 0
	for _, m := range res.Members {
		total += len(m)
	}
	if total != 2 {
		t.Errorf("members total = %d", total)
	}
}

func TestEveryUserAssignedExactlyOnce(t *testing.T) {
	ds := clusteredDataset(t, 3)
	res, err := KMeans(ds.Ratings, Config{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[model.UserID]int{}
	for c, members := range res.Members {
		for _, u := range members {
			seen[u]++
			if res.Assignment[u] != c {
				t.Errorf("user %s: Members says %d, Assignment says %d", u, c, res.Assignment[u])
			}
		}
	}
	if len(seen) != ds.Ratings.NumUsers() {
		t.Errorf("assigned %d users, want %d", len(seen), ds.Ratings.NumUsers())
	}
	for u, n := range seen {
		if n != 1 {
			t.Errorf("user %s in %d clusters", u, n)
		}
	}
}

func TestClusterOf(t *testing.T) {
	ds := clusteredDataset(t, 4)
	res, err := KMeans(ds.Ratings, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u := ds.Ratings.Users()[0]
	if c := res.ClusterOf(u); c < 0 || c >= 3 {
		t.Errorf("ClusterOf = %d", c)
	}
	if c := res.ClusterOf("ghost"); c != -1 {
		t.Errorf("ClusterOf(unknown) = %d, want -1", c)
	}
}

func TestPurityBounds(t *testing.T) {
	ds := clusteredDataset(t, 5)
	res, err := KMeans(ds.Ratings, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// perfect self-labeling → purity 1
	self := map[model.UserID]int{}
	for u, c := range res.Assignment {
		self[u] = c
	}
	if p := res.Purity(self); p != 1 {
		t.Errorf("self purity = %v, want 1", p)
	}
	// all-same labels → purity 1 only with k=1
	flat := map[model.UserID]int{}
	for u := range res.Assignment {
		flat[u] = 0
	}
	if p := res.Purity(flat); p != 1 {
		t.Errorf("flat purity = %v, want 1 (majority label trivially matches)", p)
	}
	empty := &Result{}
	if p := empty.Purity(nil); p != 0 {
		t.Errorf("empty purity = %v", p)
	}
}

// TestCandidateSourceSpeedsPeerSearch wires the clustering into
// cf.Recommender and checks (a) cluster peers are a subset of
// full-scan peers, and (b) on well-separated data the subset retains
// the top peers.
func TestCandidateSourceSpeedsPeerSearch(t *testing.T) {
	ds := clusteredDataset(t, 6)
	res, err := KMeans(ds.Ratings, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sim := simfn.NewCached(simfn.Normalized{S: simfn.Pearson{Store: ds.Ratings, MinOverlap: 3}})
	full := &cf.Recommender{Store: ds.Ratings, Sim: sim, Delta: 0.55}
	clustered := &cf.Recommender{Store: ds.Ratings, Sim: sim, Delta: 0.55, Candidates: res.CandidateSource()}

	u := ds.Ratings.Users()[0]
	fullPeers, err := full.PeerSet(u)
	if err != nil {
		t.Fatal(err)
	}
	clusterPeers, err := clustered.PeerSet(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusterPeers) == 0 {
		t.Fatal("no cluster peers found")
	}
	if len(clusterPeers) > len(fullPeers) {
		t.Errorf("cluster peers (%d) exceed full peers (%d)", len(clusterPeers), len(fullPeers))
	}
	for peer, s := range clusterPeers {
		fs, ok := fullPeers[peer]
		if !ok || math.Abs(fs-s) > 1e-12 {
			t.Errorf("cluster peer %s not in full set (or sim differs)", peer)
		}
	}
	// the single best full-scan peer should sit in the same cluster on
	// this well-separated data
	var bestPeer model.UserID
	best := -1.0
	for p, s := range fullPeers {
		if s > best || (s == best && p < bestPeer) {
			best, bestPeer = s, p
		}
	}
	if _, ok := clusterPeers[bestPeer]; !ok {
		t.Errorf("top peer %s (sim %v) missing from cluster peers", bestPeer, best)
	}
}

// TestClusteredRecommendationQuality: restricting peers to the cluster
// must not destroy prediction accuracy on cluster-structured data.
func TestClusteredRecommendationQuality(t *testing.T) {
	ds := clusteredDataset(t, 7)
	res, err := KMeans(ds.Ratings, Config{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim := simfn.NewCached(simfn.Normalized{S: simfn.Pearson{Store: ds.Ratings, MinOverlap: 3}})
	full := &cf.Recommender{Store: ds.Ratings, Sim: sim, Delta: 0.55}
	clustered := &cf.Recommender{Store: ds.Ratings, Sim: sim, Delta: 0.55, Candidates: res.CandidateSource()}

	users := ds.Ratings.Users()
	var diff, n float64
	for _, u := range users[:10] {
		fullRel, err := full.AllRelevances(u)
		if err != nil {
			t.Fatal(err)
		}
		clusterRel, err := clustered.AllRelevances(u)
		if err != nil {
			t.Fatal(err)
		}
		for item, fs := range fullRel {
			if cs, ok := clusterRel[item]; ok {
				diff += math.Abs(fs - cs)
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no comparable predictions")
	}
	if avg := diff / n; avg > 0.3 {
		t.Errorf("clustered predictions drift too far from full scan: mean |Δ| = %v", avg)
	}
}
