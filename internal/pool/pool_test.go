package pool

import (
	"sync/atomic"
	"testing"
)

func TestEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 100
		var counts [n]atomic.Int32
		Each(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestEachEmpty(t *testing.T) {
	called := false
	Each(0, 4, func(int) { called = true })
	Each(-5, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestEachMoreWorkersThanItems(t *testing.T) {
	var total atomic.Int32
	Each(3, 64, func(int) { total.Add(1) })
	if total.Load() != 3 {
		t.Errorf("visited %d items, want 3", total.Load())
	}
}
