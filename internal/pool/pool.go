// Package pool provides the bounded work-stealing worker pool shared
// by the parallel scoring paths (similarity precompute, batch group
// serving). Items are handed out through an atomic counter rather than
// fixed stripes, so uneven per-item cost — triangular similarity rows,
// groups of different sizes — balances automatically.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Each runs fn(i) for every i in [0, n) across at most workers
// goroutines and blocks until all calls return. workers ≤ 0 uses
// GOMAXPROCS. fn is invoked exactly once per index; cancellation is
// the callback's concern (check a context inside fn and return early),
// which lets callers decide whether abandoned items need marking.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
