package itemcf

import (
	"errors"
	"math"
	"testing"

	"fairhealth/internal/dataset"
	"fairhealth/internal/metrics"
	"fairhealth/internal/model"
	"fairhealth/internal/ratings"
)

func storeWith(t *testing.T, triples ...model.Triple) *ratings.Store {
	t.Helper()
	s, err := ratings.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tr(u, i string, v float64) model.Triple {
	return model.Triple{User: model.UserID(u), Item: model.ItemID(i), Value: model.Rating(v)}
}

func TestBuildRequirements(t *testing.T) {
	r := &Recommender{}
	if err := r.Build(); !errors.Is(err, ErrNoStore) {
		t.Errorf("nil store: %v", err)
	}
	r2 := &Recommender{Store: ratings.New()}
	if _, _, err := r2.Relevance("u", "i"); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("predict before build: %v", err)
	}
	if _, err := r2.Recommend("u", 3); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("recommend before build: %v", err)
	}
	if _, err := r2.Neighbors("i"); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("neighbors before build: %v", err)
	}
}

// TestAdjustedCosineHandComputed pins the similarity formula.
// Users a,b rate items i,j:
//
//	a: i=5 j=3 (plus d=4 so μ_a = 4): centered i=+1, j=−1
//	b: i=4 j=2 (plus d=3 so μ_b = 3): centered i=+1, j=−1
//
// dot(i,j) over co-raters = (1)(−1)+(1)(−1) = −2 → negative, dropped.
// For a positive pair make c's ratings align: i and d both +1.
func TestAdjustedCosineHandComputed(t *testing.T) {
	st := storeWith(t,
		tr("a", "i", 5), tr("a", "j", 3), tr("a", "d", 4),
		tr("b", "i", 4), tr("b", "j", 2), tr("b", "d", 3),
	)
	r := &Recommender{Store: st, MinOverlap: 2, ModelK: 10}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	// i and j anti-correlate → no edge
	if _, ok, err := r.ItemSimilarity("i", "j"); err != nil || ok {
		t.Errorf("anti-correlated pair present: ok=%v err=%v", ok, err)
	}
	// i and d: a centered (+1, 0) ... d centered: a: 4−4=0, b: 3−3=0 →
	// zero norm → dropped too
	if _, ok, _ := r.ItemSimilarity("i", "d"); ok {
		t.Error("zero-norm item got an edge")
	}
}

func TestPositiveSimilarityAndPrediction(t *testing.T) {
	// users rate i and j identically (centered), so sim(i,j) = 1
	st := storeWith(t,
		tr("a", "i", 5), tr("a", "j", 5), tr("a", "x", 1),
		tr("b", "i", 4), tr("b", "j", 4), tr("b", "x", 2),
		tr("c", "i", 1), tr("c", "j", 1), tr("c", "x", 5),
		// target user rated j and x but not i
		tr("u", "j", 5), tr("u", "x", 1), tr("u", "y", 3),
	)
	r := &Recommender{Store: st, MinOverlap: 2, ModelK: 10}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	sim, ok, err := r.ItemSimilarity("i", "j")
	if err != nil || !ok {
		t.Fatalf("sim(i,j): ok=%v err=%v", ok, err)
	}
	if math.Abs(sim-1) > 1e-9 {
		t.Errorf("sim(i,j) = %v, want 1", sim)
	}
	// prediction for (u, i): neighbors of i rated by u: j (sim 1) and
	// possibly x (anti-correlated, dropped) → predicted = rating(u,j) = 5
	got, ok, err := r.Relevance("u", "i")
	if err != nil || !ok {
		t.Fatalf("relevance: ok=%v err=%v", ok, err)
	}
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("relevance(u,i) = %v, want 5", got)
	}
	// recommend for u must place i on top and never include rated items
	recs, err := r.Recommend("u", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Item != "i" {
		t.Errorf("Recommend = %v, want i first", recs)
	}
	for _, rec := range recs {
		if st.HasRated("u", rec.Item) {
			t.Errorf("rated item %s recommended", rec.Item)
		}
	}
}

func TestRelevanceUndefinedWithoutNeighbors(t *testing.T) {
	st := storeWith(t,
		tr("a", "i", 5), tr("a", "j", 5),
		tr("b", "i", 4), tr("b", "j", 4),
		tr("u", "zz", 3), // u rated nothing related to i
	)
	r := &Recommender{Store: st, MinOverlap: 2, ModelK: 10}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.Relevance("u", "i"); err != nil || ok {
		t.Errorf("relevance with no rated neighbors: ok=%v err=%v", ok, err)
	}
}

func TestMinOverlapRespected(t *testing.T) {
	// only ONE co-rater for (i,j) → below MinOverlap 2 → no edge
	st := storeWith(t,
		tr("a", "i", 5), tr("a", "j", 5), tr("a", "k", 1),
		tr("b", "i", 2), tr("b", "k", 4),
	)
	r := &Recommender{Store: st, MinOverlap: 2, ModelK: 10}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.ItemSimilarity("i", "j"); ok {
		t.Error("single co-rater pair got an edge despite MinOverlap=2")
	}
}

func TestModelKBoundsNeighbors(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{Seed: 9, Users: 50, Items: 60, RatingsPerUser: 30})
	if err != nil {
		t.Fatal(err)
	}
	r := &Recommender{Store: ds.Ratings, MinOverlap: 3, ModelK: 5}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	items, edges, err := r.ModelSize()
	if err != nil {
		t.Fatal(err)
	}
	if items == 0 || edges == 0 {
		t.Fatalf("empty model: %d items, %d edges", items, edges)
	}
	for _, i := range ds.Ratings.Items() {
		ns, err := r.Neighbors(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) > 5 {
			t.Errorf("item %s has %d neighbors, want ≤ 5", i, len(ns))
		}
		for k := 1; k < len(ns); k++ {
			if ns[k-1].Score < ns[k].Score {
				t.Errorf("neighbors of %s not sorted", i)
			}
		}
	}
}

func TestRebuildAfterStoreChange(t *testing.T) {
	st := storeWith(t,
		tr("a", "i", 5), tr("a", "j", 5), tr("a", "x", 1),
		tr("b", "i", 4), tr("b", "j", 4), tr("b", "x", 2),
	)
	r := &Recommender{Store: st, MinOverlap: 2, ModelK: 10}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.ItemSimilarity("i", "j"); !ok {
		t.Fatal("expected edge before change")
	}
	// add a user that breaks the correlation, rebuild
	for _, trp := range []model.Triple{tr("c", "i", 5), tr("c", "j", 1), tr("c", "x", 3),
		tr("d", "i", 1), tr("d", "j", 5), tr("d", "x", 3)} {
		if err := st.Add(trp.User, trp.Item, trp.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	sim2, ok, _ := r.ItemSimilarity("i", "j")
	if ok && sim2 >= 0.99 {
		t.Errorf("rebuild kept stale perfect similarity: %v", sim2)
	}
}

// itemPredictor adapts the model to metrics.Predictor for the
// head-to-head with user-based CF.
type itemPredictor struct{ rec *Recommender }

func (p itemPredictor) Predict(u model.UserID, i model.ItemID) (float64, bool) {
	s, ok, err := p.rec.Relevance(u, i)
	if err != nil || !ok {
		return 0, false
	}
	return s, true
}

func (p itemPredictor) Recommend(u model.UserID, k int) []model.ScoredItem {
	recs, err := p.rec.Recommend(u, k)
	if err != nil {
		return nil
	}
	return recs
}

// TestItemCFAccuracyComparableToUserCF runs both models through the
// same holdout: item-based CF must land in the same accuracy ballpark
// as the paper's user-based model on clustered data (the standard
// result) — within 25% RMSE.
func TestItemCFAccuracyComparableToUserCF(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Seed: 31, Users: 70, Items: 90, RatingsPerUser: 35, Clusters: 3, Noise: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	itemFactory := func(train *ratings.Store) (metrics.Predictor, error) {
		rec := &Recommender{Store: train, MinOverlap: 3, ModelK: 30}
		if err := rec.Build(); err != nil {
			return nil, err
		}
		return itemPredictor{rec}, nil
	}
	itemRep, err := metrics.EvaluateHoldout(ds.Ratings, itemFactory, metrics.HoldoutConfig{Seed: 4, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	userRep, err := metrics.EvaluateHoldout(ds.Ratings, metrics.CFFactory(0.55, 3), metrics.HoldoutConfig{Seed: 4, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if itemRep.RMSE <= 0 || userRep.RMSE <= 0 {
		t.Fatalf("missing RMSE: item %v user %v", itemRep.RMSE, userRep.RMSE)
	}
	if itemRep.RMSE > userRep.RMSE*1.25 {
		t.Errorf("item CF RMSE %v too far above user CF %v", itemRep.RMSE, userRep.RMSE)
	}
	if itemRep.PredictionCoverage < 0.5 {
		t.Errorf("item CF coverage = %v", itemRep.PredictionCoverage)
	}
}

func TestDumpNeighbors(t *testing.T) {
	st := storeWith(t,
		tr("a", "i", 5), tr("a", "j", 5), tr("a", "x", 1),
		tr("b", "i", 4), tr("b", "j", 4), tr("b", "x", 2),
		tr("c", "i", 1), tr("c", "j", 1), tr("c", "x", 5),
	)
	r := &Recommender{Store: st, MinOverlap: 2}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpNeighbors(2)
	if err != nil || dump == "" {
		t.Errorf("dump = %q, %v", dump, err)
	}
}

// TestAllRelevancesMatchesPointRelevanceSet: the bulk map's candidate
// set is exactly the unrated items reachable through the neighbor
// model, with values agreeing with a direct accumulation (to a float
// tolerance — the point path sums through the item's neighbor list,
// the bulk path through the user's rated items, so term order
// differs).
func TestAllRelevancesMatchesPointRelevanceSet(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{Seed: 5, Users: 25, Items: 50, RatingsPerUser: 18})
	if err != nil {
		t.Fatal(err)
	}
	r := &Recommender{Store: ds.Ratings, MinOverlap: 2}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	u := model.UserID("patient0003")
	all, err := r.AllRelevances(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no predictions")
	}
	for item, score := range all {
		if ds.Ratings.HasRated(u, item) {
			t.Fatalf("rated item %s appears as candidate", item)
		}
		// The point path ranges over neighbors[item]; under the default
		// (unsaturated) ModelK the edge set is symmetric, so the same
		// terms accumulate and only order differs.
		point, ok, err := r.Relevance(u, item)
		if err != nil || !ok {
			t.Fatalf("Relevance(%s,%s) = (_,%v,%v)", u, item, ok, err)
		}
		if math.Abs(point-score) > 1e-9 {
			t.Fatalf("bulk %v vs point %v for %s", score, point, item)
		}
	}
	// Recommend is AllRelevances + deterministic top-k.
	recs, err := r.Recommend(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range recs {
		if all[it.Item] != it.Score {
			t.Fatalf("Recommend score %v != bulk %v for %s", it.Score, all[it.Item], it.Item)
		}
	}
}

// TestAllRelevancesDeterministic: repeated calls and rebuilt models
// must agree bit-for-bit — the contract the serving memo layers rely
// on for warm-equals-cold answers.
func TestAllRelevancesDeterministic(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{Seed: 6, Users: 30, Items: 60, RatingsPerUser: 20})
	if err != nil {
		t.Fatal(err)
	}
	r := &Recommender{Store: ds.Ratings, MinOverlap: 2}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	u := model.UserID("patient0011")
	first, err := r.AllRelevances(u)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		// A rebuilt model over unchanged data must reproduce every bit.
		fresh := &Recommender{Store: ds.Ratings, MinOverlap: 2}
		if err := fresh.Build(); err != nil {
			t.Fatal(err)
		}
		again, err := fresh.AllRelevances(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("run %d: %d predictions vs %d", run, len(again), len(first))
		}
		for item, score := range first {
			if again[item] != score {
				t.Fatalf("run %d: item %s drifted: %v vs %v", run, item, again[item], score)
			}
		}
	}
}
