// Package itemcf implements item-based collaborative filtering — the
// classic alternative (Sarwar et al., WWW 2001) to the paper's
// user-based model, included as an ablation baseline: instead of
// finding peer USERS above δ (Def. 1), it precomputes the most similar
// ITEMS per item and predicts
//
//	relevance(u,i) = Σ_{j ∈ I(u)∩N(i)} sim(i,j)·rating(u,j)
//	               / Σ_{j ∈ I(u)∩N(i)} sim(i,j)
//
// with adjusted-cosine item similarity (co-raters' ratings centered on
// each RATER's mean, which removes per-user rating bias; all three
// sums range over the users who rated BOTH items, the strict Sarwar
// form):
//
//	sim(i,j) = Σ_{u∈U(i)∩U(j)} (r(u,i)−μ_u)(r(u,j)−μ_u)
//	         / √Σ_{u∈∩} (r(u,i)−μ_u)² · √Σ_{u∈∩} (r(u,j)−μ_u)²
//
// The neighbor model is built once (O(Σ_u |I(u)|²) via user-centric
// accumulation) and served from memory, the usual deployment shape for
// item-based CF.
package itemcf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"fairhealth/internal/model"
	"fairhealth/internal/ratings"
	"fairhealth/internal/topk"
)

// Common errors.
var (
	// ErrNotBuilt is returned when predicting before Build.
	ErrNotBuilt = errors.New("itemcf: model not built")
	// ErrNoStore is returned when the recommender has no rating store.
	ErrNoStore = errors.New("itemcf: nil rating store")
)

// Recommender is an item-based CF model.
type Recommender struct {
	// Store holds the observed ratings.
	Store *ratings.Store
	// MinOverlap is the minimum number of co-raters for an item-item
	// similarity to be defined (< 2 means 2).
	MinOverlap int
	// ModelK bounds the neighbors kept per item (≤ 0 means 50).
	ModelK int

	mu        sync.RWMutex
	neighbors map[model.ItemID][]model.ScoredItem // sim-desc, ties item-asc
	built     bool
}

// pairAcc accumulates the adjusted-cosine terms of one item pair over
// its co-raters.
type pairAcc struct {
	dot     float64
	sqA     float64 // Σ centered² of the first (smaller-ID) item
	sqB     float64 // Σ centered² of the second item
	overlap int
}

// Build computes the item-item neighbor lists. It may be called again
// after the store changes.
func (r *Recommender) Build() error {
	if r.Store == nil {
		return ErrNoStore
	}
	minOverlap := r.MinOverlap
	if minOverlap < 2 {
		minOverlap = 2
	}
	modelK := r.ModelK
	if modelK <= 0 {
		modelK = 50
	}

	// Pair accumulators keyed by ordered item pair (a < b since
	// ItemsRatedBy is ascending).
	type pairKey struct{ a, b model.ItemID }
	pairs := make(map[pairKey]*pairAcc)

	// One CSR snapshot serves the whole build: each row carries the
	// ascending item array, the parallel ratings and μ_u (bit-identical
	// to MeanRating), replacing the per-user ItemsRatedBy copy and the
	// per-item map lookups of the map-based path.
	sn := r.Store.Snapshot()
	var centered []float64
	for _, u := range sn.Users() {
		row, ok := sn.Row(u)
		if !ok {
			continue
		}
		mean := row.Mean
		items := row.Items // ascending
		if cap(centered) < len(items) {
			centered = make([]float64, len(items))
		}
		centered = centered[:len(items)]
		for k := range items {
			centered[k] = float64(row.Ratings[k]) - mean
		}
		for a := 0; a < len(items); a++ {
			for b := a + 1; b < len(items); b++ {
				key := pairKey{items[a], items[b]}
				acc, ok := pairs[key]
				if !ok {
					acc = &pairAcc{}
					pairs[key] = acc
				}
				acc.dot += centered[a] * centered[b]
				acc.sqA += centered[a] * centered[a]
				acc.sqB += centered[b] * centered[b]
				acc.overlap++
			}
		}
	}

	selectors := make(map[model.ItemID]*topk.Selector)
	sel := func(i model.ItemID) *topk.Selector {
		s, ok := selectors[i]
		if !ok {
			s = topk.NewSelector(modelK)
			selectors[i] = s
		}
		return s
	}
	for key, acc := range pairs {
		if acc.overlap < minOverlap {
			continue
		}
		if acc.sqA == 0 || acc.sqB == 0 {
			continue
		}
		sim := acc.dot / (math.Sqrt(acc.sqA) * math.Sqrt(acc.sqB))
		if sim <= 0 {
			continue // negative/zero item similarity carries no weight here
		}
		if sim > 1 {
			sim = 1
		}
		sel(key.a).Push(model.ScoredItem{Item: key.b, Score: sim})
		sel(key.b).Push(model.ScoredItem{Item: key.a, Score: sim})
	}

	neighbors := make(map[model.ItemID][]model.ScoredItem, len(selectors))
	for i, s := range selectors {
		neighbors[i] = s.Result()
	}
	r.mu.Lock()
	r.neighbors, r.built = neighbors, true
	r.mu.Unlock()
	return nil
}

// Neighbors returns item i's neighbor list (similarity-descending).
func (r *Recommender) Neighbors(i model.ItemID) ([]model.ScoredItem, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.built {
		return nil, ErrNotBuilt
	}
	return append([]model.ScoredItem(nil), r.neighbors[i]...), nil
}

// ItemSimilarity returns the modeled similarity between two items
// (ok=false when the pair is not in either neighbor list).
func (r *Recommender) ItemSimilarity(a, b model.ItemID) (float64, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.built {
		return 0, false, ErrNotBuilt
	}
	for _, n := range r.neighbors[a] {
		if n.Item == b {
			return n.Score, true, nil
		}
	}
	for _, n := range r.neighbors[b] {
		if n.Item == a {
			return n.Score, true, nil
		}
	}
	return 0, false, nil
}

// Relevance predicts the rating of item i by user u. ok=false when u
// rated none of i's neighbors.
func (r *Recommender) Relevance(u model.UserID, i model.ItemID) (float64, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.built {
		return 0, false, ErrNotBuilt
	}
	var num, den float64
	for _, n := range r.neighbors[i] {
		if v, ok := r.Store.Rating(u, n.Item); ok {
			num += n.Score * float64(v)
			den += n.Score
		}
	}
	if den == 0 {
		return 0, false, nil
	}
	return num / den, true, nil
}

// AllRelevances predicts the relevance of every item the user has NOT
// rated that is reachable from their rated items through the neighbor
// model, mapping item → score. Accumulation order is deterministic —
// the user's rated items ascending (ItemsRatedBy), each neighbor list
// in its stored order — so scores are bit-reproducible across runs and
// serving paths, matching the reproducibility contract of the user-CF
// path's AllRelevances.
func (r *Recommender) AllRelevances(u model.UserID) (map[model.ItemID]float64, error) {
	r.mu.RLock()
	if !r.built {
		r.mu.RUnlock()
		return nil, ErrNotBuilt
	}
	// Score candidates reachable from the user's rated items. The CSR
	// row is the user's ratings in ascending item order — the same
	// deterministic accumulation order as before — and value-typed
	// accumulators avoid the per-item heap allocation.
	type acc struct{ num, den float64 }
	sn := r.Store.Snapshot()
	row, _ := sn.Row(u)
	accs := make(map[model.ItemID]acc)
	for k, j := range row.Items { // ascending → deterministic
		v := row.Ratings[k]
		for _, n := range r.neighbors[j] {
			a := accs[n.Item]
			a.num += n.Score * float64(v)
			a.den += n.Score
			accs[n.Item] = a
		}
	}
	r.mu.RUnlock()

	out := make(map[model.ItemID]float64, len(accs))
	for i, a := range accs {
		if a.den == 0 {
			continue
		}
		if _, rated := row.Rating(i); rated {
			continue
		}
		out[i] = a.num / a.den
	}
	return out, nil
}

// Recommend returns the user's top-k unrated items.
func (r *Recommender) Recommend(u model.UserID, k int) ([]model.ScoredItem, error) {
	scores, err := r.AllRelevances(u)
	if err != nil {
		return nil, err
	}
	return topk.TopOfMap(scores, k), nil
}

// ModelSize returns (items with neighbors, total neighbor edges) for
// diagnostics.
func (r *Recommender) ModelSize() (items, edges int, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.built {
		return 0, 0, ErrNotBuilt
	}
	for _, ns := range r.neighbors {
		edges += len(ns)
	}
	return len(r.neighbors), edges, nil
}

// DumpNeighbors renders the model for debugging, item-ascending.
func (r *Recommender) DumpNeighbors(limit int) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.built {
		return "", ErrNotBuilt
	}
	items := make([]model.ItemID, 0, len(r.neighbors))
	for i := range r.neighbors {
		items = append(items, i)
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
	if limit > 0 && limit < len(items) {
		items = items[:limit]
	}
	out := ""
	for _, i := range items {
		out += fmt.Sprintf("%s:", i)
		for _, n := range r.neighbors[i] {
			out += fmt.Sprintf(" %s=%.3f", n.Item, n.Score)
		}
		out += "\n"
	}
	return out, nil
}
