// Package search implements the document search engine of the paper's
// architecture (Fig. 1): "users can use a search engine to find useful
// documents selected by the experts and then, can rate the individual
// results". It is a classic inverted index with TF-IDF ranking —
// term-at-a-time accumulation over posting lists, SMART-style lnc.ltc
// weighting with √|d| length normalization, deterministic tie-breaks.
//
// The index is the retrieval counterpart of package textindex (which
// serves pairwise profile similarity); both share the tokenizer.
package search

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"fairhealth/internal/model"
	"fairhealth/internal/textindex"
)

// Common errors.
var (
	// ErrDuplicateDoc is returned when a document ID is indexed twice.
	ErrDuplicateDoc = errors.New("search: duplicate document")
	// ErrEmptyID is returned for an empty document ID.
	ErrEmptyID = errors.New("search: empty document id")
)

// Result is one ranked hit.
type Result struct {
	Doc   model.ItemID
	Title string
	Score float64
}

type posting struct {
	doc model.ItemID
	tf  int
}

type docInfo struct {
	title string
	len   int // token count, for length normalization
}

// Index is a thread-safe inverted index.
type Index struct {
	mu       sync.RWMutex
	tok      textindex.Tokenizer
	postings map[string][]posting // term → postings, doc-ascending
	docs     map[model.ItemID]docInfo
}

// NewIndex returns an empty index; a nil tokenizer selects the
// textindex default.
func NewIndex(tok textindex.Tokenizer) *Index {
	if tok == nil {
		tok = textindex.NewDefaultTokenizer(2, textindex.DefaultStopwords)
	}
	return &Index{
		tok:      tok,
		postings: make(map[string][]posting),
		docs:     make(map[model.ItemID]docInfo),
	}
}

// Add indexes a document (title is stored for display and indexed
// together with the body).
func (ix *Index) Add(id model.ItemID, title, body string) error {
	if id == "" {
		return ErrEmptyID
	}
	toks := ix.tok(title + " " + body)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docs[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateDoc, id)
	}
	tf := make(map[string]int)
	for _, t := range toks {
		tf[t]++
	}
	for t, n := range tf {
		ps := ix.postings[t]
		// keep postings doc-ascending; appends are usually in order,
		// fall back to insertion sort otherwise
		idx := len(ps)
		for idx > 0 && ps[idx-1].doc > id {
			idx--
		}
		ps = append(ps, posting{})
		copy(ps[idx+1:], ps[idx:])
		ps[idx] = posting{doc: id, tf: n}
		ix.postings[t] = ps
	}
	ix.docs[id] = docInfo{title: title, len: len(toks)}
	return nil
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Has reports whether a document is indexed.
func (ix *Index) Has(id model.ItemID) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.docs[id]
	return ok
}

// Title returns a document's stored title.
func (ix *Index) Title(id model.ItemID) (string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d, ok := ix.docs[id]
	return d.title, ok
}

// DocFreq returns the number of documents containing term (after
// tokenization rules).
func (ix *Index) DocFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[term])
}

// Search ranks documents against the query and returns the top k.
// Scoring is term-at-a-time TF-IDF:
//
//	score(q,d) = Σ_t∈q (1+ln tf(t,d)) · idf(t) · qtf(t) / √|d|
//
// with the smoothed idf(t) = ln(1 + N/df(t)), so a term occurring in
// every document still retrieves (unlike the similarity-oriented
// Def. 4 idf in package textindex, which zeroes it). Terms absent from
// the index contribute nothing; an empty or all-stopword query returns
// no results.
func (ix *Index) Search(query string, k int) []Result {
	if k < 1 {
		return nil
	}
	qtoks := ix.tok(query)
	if len(qtoks) == 0 {
		return nil
	}
	qtf := make(map[string]int)
	for _, t := range qtoks {
		qtf[t]++
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := float64(len(ix.docs))
	if n == 0 {
		return nil
	}
	scores := make(map[model.ItemID]float64)
	for t, qn := range qtf {
		ps := ix.postings[t]
		if len(ps) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(ps)))
		w := idf * float64(qn)
		for _, p := range ps {
			scores[p.doc] += (1 + math.Log(float64(p.tf))) * w
		}
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]Result, 0, len(scores))
	for doc, s := range scores {
		info := ix.docs[doc]
		norm := math.Sqrt(float64(info.len))
		if norm == 0 {
			norm = 1
		}
		out = append(out, Result{Doc: doc, Title: info.title, Score: s / norm})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Vocabulary returns all indexed terms, ascending (diagnostics).
func (ix *Index) Vocabulary() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
