package search

import (
	"testing"
)

// FuzzSearch indexes fuzzed documents and queries them — no input may
// panic the tokenizer, the postings insertion or the scorer, and
// results must respect k and stay score-sorted.
func FuzzSearch(f *testing.F) {
	f.Add("chemo therapy", "nausea relief with ginger", "ginger nausea")
	f.Add("", "", "")
	f.Add("títulο ünïcode", "βody with ünïcode", "ünïcode")
	f.Add("a b c", "a a a b", "a")
	f.Add("same same", "same", "same same same")
	f.Fuzz(func(t *testing.T, title, body, query string) {
		ix := NewIndex(nil)
		if err := ix.Add("d1", title, body); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if err := ix.Add("d2", body, title); err != nil {
			t.Fatalf("Add swapped: %v", err)
		}
		res := ix.Search(query, 2)
		if len(res) > 2 {
			t.Fatalf("k overflow: %d results", len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i-1].Score < res[i].Score {
				t.Fatalf("unsorted results: %v", res)
			}
		}
	})
}
