package search

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"fairhealth/internal/dataset"
	"fairhealth/internal/model"
)

func buildIndex(t *testing.T, docs map[string][2]string) *Index {
	t.Helper()
	ix := NewIndex(nil)
	for id, tb := range docs {
		if err := ix.Add(model.ItemID(id), tb[0], tb[1]); err != nil {
			t.Fatalf("Add(%s): %v", id, err)
		}
	}
	return ix
}

func medicalCorpus(t *testing.T) *Index {
	return buildIndex(t, map[string][2]string{
		"d1": {"Managing chemotherapy nausea", "chemotherapy nausea relief ginger hydration rest"},
		"d2": {"Nutrition during chemotherapy", "nutrition protein meals chemotherapy appetite"},
		"d3": {"Knee exercises after surgery", "knee exercises physiotherapy recovery strength"},
		"d4": {"Heart healthy diet", "heart diet cholesterol vegetables fiber"},
		"d5": {"Sleep hygiene basics", "sleep routine insomnia relaxation habits"},
	})
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	ix := medicalCorpus(t)
	res := ix.Search("chemotherapy nausea", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Doc != "d1" {
		t.Errorf("top hit = %s, want d1 (matches both query terms)", res[0].Doc)
	}
	// d2 matches chemotherapy only → ranked second
	if len(res) < 2 || res[1].Doc != "d2" {
		t.Errorf("second hit = %v, want d2", res)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Errorf("results not sorted: %v", res)
		}
	}
}

func TestSearchTitleStored(t *testing.T) {
	ix := medicalCorpus(t)
	res := ix.Search("insomnia", 1)
	if len(res) != 1 || res[0].Title != "Sleep hygiene basics" {
		t.Errorf("res = %v", res)
	}
	title, ok := ix.Title("d4")
	if !ok || title != "Heart healthy diet" {
		t.Errorf("Title = %q,%v", title, ok)
	}
	if _, ok := ix.Title("ghost"); ok {
		t.Error("unknown title resolved")
	}
}

func TestSearchKClamp(t *testing.T) {
	ix := medicalCorpus(t)
	if res := ix.Search("diet", 100); len(res) == 0 || len(res) > 5 {
		t.Errorf("res = %v", res)
	}
	if res := ix.Search("diet", 0); res != nil {
		t.Errorf("k=0 res = %v", res)
	}
	if res := ix.Search("diet", 1); len(res) != 1 {
		t.Errorf("k=1 res = %v", res)
	}
}

func TestSearchNoMatches(t *testing.T) {
	ix := medicalCorpus(t)
	if res := ix.Search("zebra quantum", 5); res != nil {
		t.Errorf("unknown terms res = %v", res)
	}
	if res := ix.Search("", 5); res != nil {
		t.Errorf("empty query res = %v", res)
	}
	if res := ix.Search("the and of", 5); res != nil {
		t.Errorf("stopword query res = %v", res)
	}
	empty := NewIndex(nil)
	if res := empty.Search("anything", 5); res != nil {
		t.Errorf("empty index res = %v", res)
	}
}

func TestIDFDampsCommonTerms(t *testing.T) {
	// "common" appears everywhere, "rare" once; a query with both must
	// rank the rare-term doc first even though doc lengths match.
	ix := buildIndex(t, map[string][2]string{
		"d1": {"", "common rare filler filler"},
		"d2": {"", "common stuff filler filler"},
		"d3": {"", "common stuff filler filler"},
	})
	res := ix.Search("common rare", 3)
	if len(res) == 0 || res[0].Doc != "d1" {
		t.Errorf("res = %v, want d1 first", res)
	}
	// smoothed idf: a term in every doc still retrieves, weakly
	if res := ix.Search("common", 3); len(res) != 3 {
		t.Errorf("all-docs term should still retrieve: %v", res)
	}
	// but it outweighs nothing: rare-term score dominates
	rareScore := ix.Search("rare", 1)[0].Score
	commonScore := ix.Search("common", 1)[0].Score
	if rareScore <= commonScore {
		t.Errorf("rare score %v should exceed common score %v", rareScore, commonScore)
	}
}

func TestTermFrequencySaturation(t *testing.T) {
	// log-tf: 10 repeats must not score 10× a single occurrence
	ix := buildIndex(t, map[string][2]string{
		"once": {"", "ginger aaa bbb ccc ddd eee fff ggg hhh iii"},
		"many": {"", "ginger ginger ginger ginger ginger ginger ginger ginger ginger ginger"},
		"none": {"", "unrelated words entirely"},
	})
	res := ix.Search("ginger", 2)
	if len(res) != 2 {
		t.Fatalf("res = %v", res)
	}
	ratio := res[0].Score / res[1].Score
	if ratio > 5 {
		t.Errorf("tf saturation failed: score ratio %v", ratio)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := buildIndex(t, map[string][2]string{
		"b": {"", "ginger tea"},
		"a": {"", "ginger tea"},
		"c": {"", "filler noise"},
	})
	res := ix.Search("ginger", 2)
	if len(res) != 2 || res[0].Doc != "a" || res[1].Doc != "b" {
		t.Errorf("tie break = %v, want a then b", res)
	}
}

func TestAddValidation(t *testing.T) {
	ix := NewIndex(nil)
	if err := ix.Add("", "t", "b"); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id: %v", err)
	}
	if err := ix.Add("d1", "t", "b"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("d1", "t", "b"); !errors.Is(err, ErrDuplicateDoc) {
		t.Errorf("duplicate: %v", err)
	}
	if !ix.Has("d1") || ix.Has("d2") {
		t.Error("Has wrong")
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestDocFreqAndVocabulary(t *testing.T) {
	ix := medicalCorpus(t)
	if df := ix.DocFreq("chemotherapy"); df != 2 {
		t.Errorf("df(chemotherapy) = %d, want 2", df)
	}
	if df := ix.DocFreq("nonexistent"); df != 0 {
		t.Errorf("df(nonexistent) = %d", df)
	}
	vocab := ix.Vocabulary()
	if len(vocab) < 10 {
		t.Errorf("vocabulary too small: %d", len(vocab))
	}
	for i := 1; i < len(vocab); i++ {
		if vocab[i-1] >= vocab[i] {
			t.Fatalf("vocabulary not sorted at %d", i)
		}
	}
}

func TestOutOfOrderInsertKeepsPostingsSorted(t *testing.T) {
	ix := NewIndex(nil)
	for _, id := range []string{"zz", "aa", "mm"} {
		if err := ix.Add(model.ItemID(id), "", "ginger tea"); err != nil {
			t.Fatal(err)
		}
	}
	res := ix.Search("ginger", 3)
	if len(res) != 3 || res[0].Doc != "aa" || res[1].Doc != "mm" || res[2].Doc != "zz" {
		t.Errorf("res = %v, want aa mm zz (equal scores, ID order)", res)
	}
}

func TestConcurrentIndexAndSearch(t *testing.T) {
	ix := NewIndex(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				id := model.ItemID(fmt.Sprintf("doc-%d-%d", w, k))
				if err := ix.Add(id, "title", "ginger nausea relief"); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				ix.Search("ginger", 5)
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 200 {
		t.Errorf("Len = %d", ix.Len())
	}
}

// TestSearchOnGeneratedCorpus wires the dataset generator's documents
// through the index: topic queries must surface documents of that
// topic.
func TestSearchOnGeneratedCorpus(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{Seed: 3, Items: 60})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(nil)
	for _, d := range ds.Documents {
		if err := ix.Add(d.ID, d.Title, d.Body); err != nil {
			t.Fatal(err)
		}
	}
	res := ix.Search("chemotherapy tumor screening", 5)
	if len(res) == 0 {
		t.Fatal("no oncology results")
	}
	byID := make(map[model.ItemID]dataset.Document, len(ds.Documents))
	for _, d := range ds.Documents {
		byID[d.ID] = d
	}
	for _, r := range res {
		if lbl := dataset.TopicLabel(byID[r.Doc].Topic); lbl != "oncology" {
			t.Errorf("hit %s has topic %s, want oncology", r.Doc, lbl)
		}
	}
}
