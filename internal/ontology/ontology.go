// Package ontology implements the semantic-similarity substrate of
// §V.C: health problems live in an is-a hierarchy (the paper uses
// SNOMED-CT; package snomed ships a license-free equivalent), the
// similarity of two problems is derived from the shortest path between
// their nodes ("longer path means a smaller similarity"), and the
// overall similarity of two users is the harmonic mean of all pairwise
// problem similarities (Eq. 4).
//
// The hierarchy is a rooted DAG: every concept except the root has one
// or more parents. Distances are shortest paths in the undirected
// is-a graph, computed by bidirectional BFS; for the common
// single-parent (tree) case this equals the classic
// depth(a)+depth(b)-2·depth(LCA) distance, which the tests
// cross-check.
package ontology

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ConceptID identifies a concept (a SNOMED-CT code in the paper).
type ConceptID string

// Common errors.
var (
	// ErrUnknownConcept is returned when a concept is not in the
	// hierarchy.
	ErrUnknownConcept = errors.New("ontology: unknown concept")
	// ErrDuplicateConcept is returned when adding an existing concept.
	ErrDuplicateConcept = errors.New("ontology: duplicate concept")
	// ErrCycle is returned when an edge would create a cycle.
	ErrCycle = errors.New("ontology: is-a cycle")
	// ErrNoPath is returned when two concepts are not connected (can
	// only happen in a forest with multiple roots).
	ErrNoPath = errors.New("ontology: no path between concepts")
)

// Concept is one node of the hierarchy.
type Concept struct {
	ID   ConceptID
	Name string
}

// Ontology is a thread-safe rooted is-a hierarchy.
type Ontology struct {
	mu       sync.RWMutex
	concepts map[ConceptID]Concept
	parents  map[ConceptID][]ConceptID
	children map[ConceptID][]ConceptID
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		concepts: make(map[ConceptID]Concept),
		parents:  make(map[ConceptID][]ConceptID),
		children: make(map[ConceptID][]ConceptID),
	}
}

// AddRoot registers a root concept (no parent).
func (o *Ontology) AddRoot(id ConceptID, name string) error {
	return o.add(id, name, nil)
}

// Add registers a concept with one or more parents, all of which must
// already exist.
func (o *Ontology) Add(id ConceptID, name string, parents ...ConceptID) error {
	if len(parents) == 0 {
		return fmt.Errorf("ontology: concept %s needs ≥1 parent (use AddRoot for roots)", id)
	}
	return o.add(id, name, parents)
}

func (o *Ontology) add(id ConceptID, name string, parents []ConceptID) error {
	if id == "" {
		return errors.New("ontology: empty concept id")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.concepts[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateConcept, id)
	}
	for _, p := range parents {
		if _, ok := o.concepts[p]; !ok {
			return fmt.Errorf("%w: parent %s of %s", ErrUnknownConcept, p, id)
		}
	}
	o.concepts[id] = Concept{ID: id, Name: name}
	for _, p := range parents {
		o.parents[id] = append(o.parents[id], p)
		o.children[p] = append(o.children[p], id)
	}
	return nil
}

// AddParent links an existing concept to an additional parent,
// rejecting self-loops, duplicates and cycles.
func (o *Ontology) AddParent(id, parent ConceptID) error {
	if id == parent {
		return fmt.Errorf("%w: self loop at %s", ErrCycle, id)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.concepts[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConcept, id)
	}
	if _, ok := o.concepts[parent]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConcept, parent)
	}
	for _, p := range o.parents[id] {
		if p == parent {
			return nil // already linked
		}
	}
	// parent must not be a descendant of id
	if o.reachesLocked(parent, id) {
		return fmt.Errorf("%w: %s is an ancestor of %s", ErrCycle, id, parent)
	}
	o.parents[id] = append(o.parents[id], parent)
	o.children[parent] = append(o.children[parent], id)
	return nil
}

// reachesLocked reports whether `from` can reach `to` following parent
// links (i.e. `to` is an ancestor of `from`). Caller holds the lock.
func (o *Ontology) reachesLocked(from, to ConceptID) bool {
	seen := map[ConceptID]bool{from: true}
	queue := []ConceptID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			return true
		}
		for _, p := range o.parents[cur] {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return false
}

// Has reports whether id is a known concept.
func (o *Ontology) Has(id ConceptID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.concepts[id]
	return ok
}

// Concept returns the concept record for id.
func (o *Ontology) Concept(id ConceptID) (Concept, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	c, ok := o.concepts[id]
	return c, ok
}

// Len returns the number of concepts.
func (o *Ontology) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.concepts)
}

// Parents returns the parents of id, ascending.
func (o *Ontology) Parents(id ConceptID) []ConceptID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := append([]ConceptID(nil), o.parents[id]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Children returns the children of id, ascending.
func (o *Ontology) Children(id ConceptID) []ConceptID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := append([]ConceptID(nil), o.children[id]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Roots returns all concepts without parents, ascending.
func (o *Ontology) Roots() []ConceptID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []ConceptID
	for id := range o.concepts {
		if len(o.parents[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Ancestors returns every ancestor of id (excluding id), ascending.
func (o *Ontology) Ancestors(id ConceptID) ([]ConceptID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.concepts[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownConcept, id)
	}
	seen := make(map[ConceptID]bool)
	queue := append([]ConceptID(nil), o.parents[id]...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		queue = append(queue, o.parents[cur]...)
	}
	out := make([]ConceptID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// Depth returns the length of the shortest parent chain from id to a
// root (root depth = 0).
func (o *Ontology) Depth(id ConceptID) (int, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.concepts[id]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownConcept, id)
	}
	depth := 0
	frontier := []ConceptID{id}
	seen := map[ConceptID]bool{id: true}
	for len(frontier) > 0 {
		var next []ConceptID
		for _, cur := range frontier {
			if len(o.parents[cur]) == 0 {
				return depth, nil
			}
			for _, p := range o.parents[cur] {
				if !seen[p] {
					seen[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
		depth++
	}
	// unreachable in a well-formed hierarchy
	return depth, nil
}

// PathLength returns the number of edges on the shortest undirected
// is-a path between a and b — the distance the paper uses in §V.C.1
// ("we will identify the shortest path that connects those two nodes in
// the tree"). Identical concepts have distance 0.
func (o *Ontology) PathLength(a, b ConceptID) (int, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.concepts[a]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownConcept, a)
	}
	if _, ok := o.concepts[b]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownConcept, b)
	}
	if a == b {
		return 0, nil
	}
	// Bidirectional BFS over the undirected graph.
	distA := map[ConceptID]int{a: 0}
	distB := map[ConceptID]int{b: 0}
	frontA := []ConceptID{a}
	frontB := []ConceptID{b}
	best := -1
	for len(frontA) > 0 || len(frontB) > 0 {
		// Expand the smaller frontier first.
		if len(frontA) != 0 && (len(frontB) == 0 || len(frontA) <= len(frontB)) {
			frontA, best = o.expand(frontA, distA, distB, best)
		} else {
			frontB, best = o.expand(frontB, distB, distA, best)
		}
		if best >= 0 {
			// One more sweep could not shorten a found meeting point by
			// more than the frontier depth; since BFS layers grow by 1,
			// the first meeting is within 1 of optimal — finish the
			// frontier at the same depth then stop.
			frontA, best = o.expand(frontA, distA, distB, best)
			frontB, best = o.expand(frontB, distB, distA, best)
			return best, nil
		}
	}
	return 0, fmt.Errorf("%w: %s and %s", ErrNoPath, a, b)
}

// expand advances one BFS layer of `front` using `dist`, checking the
// opposite distance map for meetings; it returns the next frontier and
// the best meeting distance found so far.
func (o *Ontology) expand(front []ConceptID, dist, other map[ConceptID]int, best int) ([]ConceptID, int) {
	var next []ConceptID
	for _, cur := range front {
		d := dist[cur]
		for _, nb := range o.neighborsLocked(cur) {
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = d + 1
			if od, ok := other[nb]; ok {
				total := d + 1 + od
				if best < 0 || total < best {
					best = total
				}
			}
			next = append(next, nb)
		}
	}
	return next, best
}

func (o *Ontology) neighborsLocked(id ConceptID) []ConceptID {
	ps, cs := o.parents[id], o.children[id]
	out := make([]ConceptID, 0, len(ps)+len(cs))
	out = append(out, ps...)
	out = append(out, cs...)
	return out
}

// Similarity converts a path length into a similarity in (0, 1]:
// sim(a,b) = 1 / (1 + dist(a,b)), so identical concepts score 1 and
// longer paths score lower, matching the paper's "longer path means a
// smaller similarity".
func (o *Ontology) Similarity(a, b ConceptID) (float64, error) {
	d, err := o.PathLength(a, b)
	if err != nil {
		return 0, err
	}
	return 1 / (1 + float64(d)), nil
}

// HarmonicMean implements Eq. 4: n / Σ(1/xᵢ). It returns 0 for an
// empty input and 0 when any xᵢ is 0 (the harmonic mean's natural
// limit as a term approaches zero).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// SetSimilarity computes the overall similarity of two problem lists
// per §V.C.2: pairwise similarities of all problem pairs (the cross
// product of the two lists), aggregated with the harmonic mean. ok is
// false when either list is empty. Unknown concepts yield an error.
func (o *Ontology) SetSimilarity(a, b []ConceptID) (sim float64, ok bool, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, false, nil
	}
	sims := make([]float64, 0, len(a)*len(b))
	for _, pa := range a {
		for _, pb := range b {
			s, err := o.Similarity(pa, pb)
			if err != nil {
				return 0, false, err
			}
			sims = append(sims, s)
		}
	}
	return HarmonicMean(sims), true, nil
}

// Validate checks structural invariants: every non-root reaches a
// root, and there are no parent-link cycles.
func (o *Ontology) Validate() error {
	o.mu.RLock()
	defer o.mu.RUnlock()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ConceptID]int, len(o.concepts))
	var visit func(ConceptID) error
	visit = func(id ConceptID) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("%w: through %s", ErrCycle, id)
		case black:
			return nil
		}
		color[id] = gray
		for _, p := range o.parents[id] {
			if _, ok := o.concepts[p]; !ok {
				return fmt.Errorf("%w: dangling parent %s of %s", ErrUnknownConcept, p, id)
			}
			if err := visit(p); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for id := range o.concepts {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo serializes the ontology as lines of
// "id|name|parent1,parent2,..." in ascending ID order (roots have an
// empty parent list).
func (o *Ontology) WriteTo(w io.Writer) (int64, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ids := make([]ConceptID, 0, len(o.concepts))
	for id := range o.concepts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var total int64
	for _, id := range ids {
		ps := append([]ConceptID(nil), o.parents[id]...)
		sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
		strs := make([]string, len(ps))
		for k, p := range ps {
			strs[k] = string(p)
		}
		n, err := fmt.Fprintf(w, "%s|%s|%s\n", id, o.concepts[id].Name, strings.Join(strs, ","))
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("ontology: write: %w", err)
		}
	}
	return total, nil
}

// Read parses the WriteTo format. Lines may arrive in any order;
// forward references are resolved with a two-pass load.
func Read(r io.Reader) (*Ontology, error) {
	type row struct {
		id      ConceptID
		name    string
		parents []ConceptID
	}
	var rows []row
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("ontology: line %d: want id|name|parents, got %q", line, text)
		}
		var ps []ConceptID
		if parts[2] != "" {
			for _, p := range strings.Split(parts[2], ",") {
				ps = append(ps, ConceptID(strings.TrimSpace(p)))
			}
		}
		rows = append(rows, row{ConceptID(parts[0]), parts[1], ps})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology: read: %w", err)
	}
	o := New()
	// Pass 1: concepts. Pass 2: edges.
	for _, r := range rows {
		if r.id == "" {
			return nil, errors.New("ontology: empty id in input")
		}
		o.mu.Lock()
		if _, dup := o.concepts[r.id]; dup {
			o.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrDuplicateConcept, r.id)
		}
		o.concepts[r.id] = Concept{ID: r.id, Name: r.name}
		o.mu.Unlock()
	}
	for _, r := range rows {
		for _, p := range r.parents {
			if err := o.AddParent(r.id, p); err != nil {
				return nil, err
			}
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}
