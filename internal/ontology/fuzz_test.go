package ontology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures arbitrary input never panics the parser, and that
// accepted ontologies are valid and serialize/parse to a fixed point.
func FuzzRead(f *testing.F) {
	f.Add("r|Root|\nc|Child|r\n")
	f.Add("# comment\n\nr|Root|\n")
	f.Add("a|A|b\nb|B|\n") // forward reference
	f.Add("a|A|a\n")       // self loop
	f.Add("x|X|y\ny|Y|x\n")
	f.Add("||")
	f.Add("r|Root|\nc|Child|r,r\n")
	f.Fuzz(func(t *testing.T, input string) {
		o, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("accepted ontology fails validation: %v", err)
		}
		var buf bytes.Buffer
		if _, err := o.WriteTo(&buf); err != nil {
			t.Fatalf("serialize accepted ontology: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != o.Len() {
			t.Fatalf("round trip len %d != %d", back.Len(), o.Len())
		}
	})
}
