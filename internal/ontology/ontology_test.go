package ontology

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildChain returns root -> c1 -> c2 -> ... -> cn.
func buildChain(t *testing.T, n int) *Ontology {
	t.Helper()
	o := New()
	if err := o.AddRoot("root", "Root"); err != nil {
		t.Fatal(err)
	}
	prev := ConceptID("root")
	for k := 1; k <= n; k++ {
		id := ConceptID(fmt.Sprintf("c%d", k))
		if err := o.Add(id, string(id), prev); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	return o
}

// buildMedTree reproduces the shape behind the paper's Table I
// discussion:
//
//	finding
//	├── resp (disorder of respiratory system)
//	│   └── bronchitis
//	│       ├── acute (acute bronchitis)
//	│       └── tracheo (tracheobronchitis)
//	├── pain
//	│   └── chest (chest pain)
//	└── musculo
//	    └── fracture (broken arm)
func buildMedTree(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	steps := []struct {
		id, name string
		parents  []ConceptID
	}{
		{"finding", "Clinical finding", nil},
		{"resp", "Disorder of respiratory system", []ConceptID{"finding"}},
		{"bronchitis", "Bronchitis", []ConceptID{"resp"}},
		{"acute", "Acute bronchitis", []ConceptID{"bronchitis"}},
		{"tracheo", "Tracheobronchitis", []ConceptID{"bronchitis"}},
		{"pain", "Pain", []ConceptID{"finding"}},
		{"chest", "Chest pain", []ConceptID{"pain"}},
		{"musculo", "Musculoskeletal disorder", []ConceptID{"finding"}},
		{"fracture", "Broken arm", []ConceptID{"musculo"}},
	}
	for _, s := range steps {
		var err error
		if s.parents == nil {
			err = o.AddRoot(ConceptID(s.id), s.name)
		} else {
			err = o.Add(ConceptID(s.id), s.name, s.parents...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestAddAndLookup(t *testing.T) {
	o := buildMedTree(t)
	if o.Len() != 9 {
		t.Errorf("Len = %d, want 9", o.Len())
	}
	c, ok := o.Concept("acute")
	if !ok || c.Name != "Acute bronchitis" {
		t.Errorf("Concept(acute) = %+v,%v", c, ok)
	}
	if !o.Has("chest") || o.Has("nope") {
		t.Error("Has wrong")
	}
	if got := o.Parents("acute"); !reflect.DeepEqual(got, []ConceptID{"bronchitis"}) {
		t.Errorf("Parents(acute) = %v", got)
	}
	kids := o.Children("bronchitis")
	if !reflect.DeepEqual(kids, []ConceptID{"acute", "tracheo"}) {
		t.Errorf("Children(bronchitis) = %v", kids)
	}
	if got := o.Roots(); !reflect.DeepEqual(got, []ConceptID{"finding"}) {
		t.Errorf("Roots = %v", got)
	}
}

func TestAddValidation(t *testing.T) {
	o := New()
	if err := o.AddRoot("", "x"); err == nil {
		t.Error("empty id accepted")
	}
	if err := o.AddRoot("r", "Root"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRoot("r", "again"); !errors.Is(err, ErrDuplicateConcept) {
		t.Errorf("dup: %v", err)
	}
	if err := o.Add("c", "child"); err == nil {
		t.Error("Add with no parents accepted")
	}
	if err := o.Add("c", "child", "missing"); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("unknown parent: %v", err)
	}
}

func TestAddParentCycleDetection(t *testing.T) {
	o := buildChain(t, 3)
	if err := o.AddParent("c1", "c3"); !errors.Is(err, ErrCycle) {
		t.Errorf("ancestor->descendant edge: %v, want ErrCycle", err)
	}
	if err := o.AddParent("c1", "c1"); !errors.Is(err, ErrCycle) {
		t.Errorf("self loop: %v, want ErrCycle", err)
	}
	if err := o.AddParent("c1", "root"); err != nil {
		t.Errorf("re-adding existing edge should be nil, got %v", err)
	}
	if err := o.AddParent("missing", "root"); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("unknown child: %v", err)
	}
}

func TestDepth(t *testing.T) {
	o := buildMedTree(t)
	for id, want := range map[ConceptID]int{
		"finding": 0, "resp": 1, "bronchitis": 2, "acute": 3, "chest": 2,
	} {
		got, err := o.Depth(id)
		if err != nil || got != want {
			t.Errorf("Depth(%s) = %d,%v want %d", id, got, err, want)
		}
	}
	if _, err := o.Depth("nope"); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("Depth(unknown): %v", err)
	}
}

func TestDepthTakesShortestChain(t *testing.T) {
	// diamond: root -> a -> b; root -> b directly too
	o := New()
	if err := o.AddRoot("root", ""); err != nil {
		t.Fatal(err)
	}
	if err := o.Add("a", "", "root"); err != nil {
		t.Fatal(err)
	}
	if err := o.Add("b", "", "a"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddParent("b", "root"); err != nil {
		t.Fatal(err)
	}
	d, err := o.Depth("b")
	if err != nil || d != 1 {
		t.Errorf("Depth(b) = %d,%v want 1 (shortest chain)", d, err)
	}
}

// TestPaperPathLengths pins the two distances the paper derives from
// SNOMED-CT in §V.C.1: acute bronchitis ↔ chest pain = 5 and
// tracheobronchitis ↔ acute bronchitis = 2.
func TestPaperPathLengths(t *testing.T) {
	o := buildMedTree(t)
	d, err := o.PathLength("acute", "chest")
	if err != nil || d != 5 {
		t.Errorf("dist(acute bronchitis, chest pain) = %d,%v want 5", d, err)
	}
	d, err = o.PathLength("tracheo", "acute")
	if err != nil || d != 2 {
		t.Errorf("dist(tracheobronchitis, acute bronchitis) = %d,%v want 2", d, err)
	}
}

func TestPathLengthBasics(t *testing.T) {
	o := buildMedTree(t)
	if d, err := o.PathLength("acute", "acute"); err != nil || d != 0 {
		t.Errorf("self distance = %d,%v want 0", d, err)
	}
	if d, err := o.PathLength("acute", "bronchitis"); err != nil || d != 1 {
		t.Errorf("parent distance = %d,%v want 1", d, err)
	}
	// symmetry
	d1, _ := o.PathLength("acute", "fracture")
	d2, _ := o.PathLength("fracture", "acute")
	if d1 != d2 {
		t.Errorf("asymmetric path: %d vs %d", d1, d2)
	}
	if _, err := o.PathLength("acute", "ghost"); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("unknown concept: %v", err)
	}
}

func TestPathLengthDisconnected(t *testing.T) {
	o := New()
	if err := o.AddRoot("r1", ""); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRoot("r2", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := o.PathLength("r1", "r2"); !errors.Is(err, ErrNoPath) {
		t.Errorf("disconnected roots: %v, want ErrNoPath", err)
	}
}

func TestPathLengthUsesShortcutEdges(t *testing.T) {
	// long chain root->c1->...->c6 plus a direct edge c6->root
	o := buildChain(t, 6)
	if err := o.AddParent("c6", "root"); err != nil {
		t.Fatal(err)
	}
	d, err := o.PathLength("c6", "root")
	if err != nil || d != 1 {
		t.Errorf("shortcut distance = %d,%v want 1", d, err)
	}
	// c5 should now reach root in 2 via c6
	d, err = o.PathLength("c5", "root")
	if err != nil || d != 2 {
		t.Errorf("via-shortcut distance = %d,%v want 2", d, err)
	}
}

// TestPathLengthMatchesLCAOnTrees cross-checks bidirectional BFS
// against the classic depth(a)+depth(b)-2·depth(lca) formula on random
// single-parent trees.
func TestPathLengthMatchesLCAOnTrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o := New()
		if err := o.AddRoot("n0", ""); err != nil {
			t.Fatal(err)
		}
		parent := map[int]int{}
		n := 60
		for k := 1; k < n; k++ {
			p := rng.Intn(k)
			parent[k] = p
			if err := o.Add(ConceptID(fmt.Sprintf("n%d", k)), "", ConceptID(fmt.Sprintf("n%d", p))); err != nil {
				t.Fatal(err)
			}
		}
		depth := func(x int) int {
			d := 0
			for x != 0 {
				x = parent[x]
				d++
			}
			return d
		}
		lcaDist := func(a, b int) int {
			da, db := depth(a), depth(b)
			x, y, dx, dy := a, b, da, db
			for dx > dy {
				x = parent[x]
				dx--
			}
			for dy > dx {
				y = parent[y]
				dy--
			}
			for x != y {
				x, y = parent[x], parent[y]
				dx--
			}
			return da + db - 2*dx
		}
		for trial := 0; trial < 40; trial++ {
			a, b := rng.Intn(n), rng.Intn(n)
			want := lcaDist(a, b)
			got, err := o.PathLength(ConceptID(fmt.Sprintf("n%d", a)), ConceptID(fmt.Sprintf("n%d", b)))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d: dist(n%d,n%d) = %d, want %d", seed, a, b, got, want)
			}
		}
	}
}

func TestAncestors(t *testing.T) {
	o := buildMedTree(t)
	got, err := o.Ancestors("acute")
	if err != nil {
		t.Fatal(err)
	}
	want := []ConceptID{"bronchitis", "finding", "resp"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors(acute) = %v, want %v", got, want)
	}
	if _, err := o.Ancestors("ghost"); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("unknown: %v", err)
	}
	rootAnc, _ := o.Ancestors("finding")
	if len(rootAnc) != 0 {
		t.Errorf("root ancestors = %v, want none", rootAnc)
	}
}

func TestSimilarity(t *testing.T) {
	o := buildMedTree(t)
	s, err := o.Similarity("acute", "acute")
	if err != nil || s != 1 {
		t.Errorf("self similarity = %v,%v want 1", s, err)
	}
	s2, _ := o.Similarity("tracheo", "acute") // dist 2 → 1/3
	if math.Abs(s2-1.0/3) > 1e-12 {
		t.Errorf("sim dist2 = %v, want 1/3", s2)
	}
	s5, _ := o.Similarity("acute", "chest") // dist 5 → 1/6
	if math.Abs(s5-1.0/6) > 1e-12 {
		t.Errorf("sim dist5 = %v, want 1/6", s5)
	}
	if s2 <= s5 {
		t.Error("closer concepts must be more similar")
	}
}

func TestHarmonicMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 1}, 1},
		{[]float64{1, 0.5}, 2.0 / 3},
		{[]float64{4, 4, 4}, 4},
		{[]float64{1, 0}, 0}, // zero term collapses the mean
	}
	for _, c := range cases {
		if got := HarmonicMean(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HarmonicMean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHarmonicMeanLeqArithmetic(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var arith float64
		for i, r := range raw {
			xs[i] = 0.1 + float64(r)/32 // strictly positive
			arith += xs[i]
		}
		arith /= float64(len(xs))
		h := HarmonicMean(xs)
		return h <= arith+1e-9 && h > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSetSimilarityPaperOrdering verifies the §V.C claim: patient 1
// (acute bronchitis) is more similar to patient 3 (tracheobronchitis +
// broken arm) than... actually the paper compares single problems;
// here we check the aggregate: sim({acute}, {tracheo}) >
// sim({acute}, {chest}).
func TestSetSimilarityPaperOrdering(t *testing.T) {
	o := buildMedTree(t)
	s13, ok, err := o.SetSimilarity([]ConceptID{"acute"}, []ConceptID{"tracheo"})
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	s12, ok, err := o.SetSimilarity([]ConceptID{"acute"}, []ConceptID{"chest"})
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if s13 <= s12 {
		t.Errorf("sim(P1,P3)=%v must exceed sim(P1,P2)=%v", s13, s12)
	}
}

func TestSetSimilarityMultiProblem(t *testing.T) {
	o := buildMedTree(t)
	// {acute} vs {tracheo, fracture}: pairs (acute,tracheo)=1/3,
	// (acute,fracture): dist = 3+... acute->bronchitis->resp->finding->musculo->fracture = 5 → 1/6.
	// harmonic mean of {1/3, 1/6} = 2 / (3 + 6) = 2/9.
	got, ok, err := o.SetSimilarity([]ConceptID{"acute"}, []ConceptID{"tracheo", "fracture"})
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if want := 2.0 / 9; math.Abs(got-want) > 1e-12 {
		t.Errorf("SetSimilarity = %v, want %v", got, want)
	}
}

func TestSetSimilarityEdgeCases(t *testing.T) {
	o := buildMedTree(t)
	if _, ok, err := o.SetSimilarity(nil, []ConceptID{"acute"}); ok || err != nil {
		t.Errorf("empty list: ok=%v err=%v, want false,nil", ok, err)
	}
	if _, _, err := o.SetSimilarity([]ConceptID{"ghost"}, []ConceptID{"acute"}); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("unknown concept: %v", err)
	}
	// identical singleton lists → similarity 1
	s, ok, err := o.SetSimilarity([]ConceptID{"acute"}, []ConceptID{"acute"})
	if err != nil || !ok || s != 1 {
		t.Errorf("identical lists = %v,%v,%v want 1,true,nil", s, ok, err)
	}
}

func TestValidate(t *testing.T) {
	o := buildMedTree(t)
	if err := o.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	// smuggle in a cycle bypassing AddParent's check
	o.mu.Lock()
	o.parents["finding"] = append(o.parents["finding"], "acute")
	o.mu.Unlock()
	if err := o.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	o := buildMedTree(t)
	if err := o.AddParent("chest", "resp"); err != nil { // make it a DAG
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != o.Len() {
		t.Fatalf("round trip len = %d, want %d", back.Len(), o.Len())
	}
	for _, id := range []ConceptID{"acute", "chest", "finding"} {
		if !reflect.DeepEqual(back.Parents(id), o.Parents(id)) {
			t.Errorf("parents of %s differ: %v vs %v", id, back.Parents(id), o.Parents(id))
		}
	}
	d, err := back.PathLength("acute", "chest")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := o.PathLength("acute", "chest")
	if d != want {
		t.Errorf("distance after round trip = %d, want %d", d, want)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("bad line no pipes\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Read(strings.NewReader("a|A|\na|A|\n")); !errors.Is(err, ErrDuplicateConcept) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := Read(strings.NewReader("a|A|ghost\n")); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("dangling parent: %v", err)
	}
	// comments and blanks are fine
	o, err := Read(strings.NewReader("# comment\n\nr|Root|\nc|Child|r\n"))
	if err != nil || o.Len() != 2 {
		t.Errorf("comment handling: %v len=%d", err, o.Len())
	}
}

// Property: similarity is symmetric, in (0,1], and 1 iff identical on a
// random tree.
func TestSimilarityProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	o := New()
	if err := o.AddRoot("n0", ""); err != nil {
		t.Fatal(err)
	}
	n := 40
	for k := 1; k < n; k++ {
		if err := o.Add(ConceptID(fmt.Sprintf("n%d", k)), "", ConceptID(fmt.Sprintf("n%d", rng.Intn(k)))); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 60; trial++ {
		a := ConceptID(fmt.Sprintf("n%d", rng.Intn(n)))
		b := ConceptID(fmt.Sprintf("n%d", rng.Intn(n)))
		s1, err1 := o.Similarity(a, b)
		s2, err2 := o.Similarity(b, a)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(s1-s2) > 1e-12 {
			t.Fatalf("asymmetric: %v vs %v", s1, s2)
		}
		if s1 <= 0 || s1 > 1 {
			t.Fatalf("out of range: %v", s1)
		}
		if (s1 == 1) != (a == b) {
			t.Fatalf("sim=1 iff identical violated: %s %s %v", a, b, s1)
		}
	}
}
