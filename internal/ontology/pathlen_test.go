package ontology

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveDist runs a plain BFS over the undirected is-a graph — the
// obviously-correct reference for PathLength.
func naiveDist(o *Ontology, a, b ConceptID) int {
	if a == b {
		return 0
	}
	dist := map[ConceptID]int{a: 0}
	queue := []ConceptID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		o.mu.RLock()
		nbs := o.neighborsLocked(cur)
		o.mu.RUnlock()
		for _, nb := range nbs {
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = dist[cur] + 1
			if nb == b {
				return dist[nb]
			}
			queue = append(queue, nb)
		}
	}
	return -1
}

// TestPathLengthMatchesNaiveBFSOnDAGs cross-checks the bidirectional
// search against plain BFS on random multi-parent hierarchies.
func TestPathLengthMatchesNaiveBFSOnDAGs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o := New()
		if err := o.AddRoot("n0", ""); err != nil {
			t.Fatal(err)
		}
		n := 80
		for k := 1; k < n; k++ {
			id := ConceptID(fmt.Sprintf("n%d", k))
			if err := o.Add(id, "", ConceptID(fmt.Sprintf("n%d", rng.Intn(k)))); err != nil {
				t.Fatal(err)
			}
			// sprinkle extra parents to make it a DAG
			for rng.Float64() < 0.3 {
				p := ConceptID(fmt.Sprintf("n%d", rng.Intn(k)))
				if err := o.AddParent(id, p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 80; trial++ {
			a := ConceptID(fmt.Sprintf("n%d", rng.Intn(n)))
			b := ConceptID(fmt.Sprintf("n%d", rng.Intn(n)))
			want := naiveDist(o, a, b)
			got, err := o.PathLength(a, b)
			if err != nil {
				t.Fatalf("seed %d: PathLength(%s,%s): %v", seed, a, b, err)
			}
			if got != want {
				t.Fatalf("seed %d: dist(%s,%s) = %d, want %d", seed, a, b, got, want)
			}
		}
	}
}
