// Package fairhealth is a fairness-aware group recommender for the
// health domain — a from-scratch Go implementation of Stratigi,
// Kondylakis & Stefanidis, "Fairness in Group Recommendations in the
// Health Domain" (ICDE 2017).
//
// The system serves a caregiver responsible for a group of patients:
// it predicts each patient's interest in health documents with
// collaborative filtering (peers selected by a similarity threshold δ,
// Def. 1; relevance by similarity-weighted averaging, Eq. 1),
// aggregates the predictions into group scores with veto (min) or
// majority (avg) semantics (Def. 2), and selects the top-z
// recommendations that are both highly relevant and fair — where a set
// is fair to a patient when it contains at least one item from their
// personal top-k (Def. 3).
//
// Three user-similarity measures are available (§V): Pearson
// correlation over shared ratings, cosine over TF-IDF profile vectors,
// semantic distance of coded health problems over a SNOMED-CT-style
// ontology, or a weighted hybrid of all three.
//
// Every group recommendation is one typed request — a GroupQuery —
// answered by the single execution path System.Serve:
//
//	sys, _ := fairhealth.New(fairhealth.Config{})
//	sys.AddRating("alice", "doc1", 5)
//	...
//	res, _ := sys.Serve(ctx, fairhealth.GroupQuery{
//		Members: []string{"alice", "bob"},
//		Z:       10,
//	})
//	fmt.Println(res.Items, res.Fairness)
//
// The query object carries every knob — solver method (greedy, brute,
// mapreduce), relevance scorer, brute-force bounds, per-query
// aggregation semantics and fairness K, and an explain flag for the
// per-member evidence. The historical entry points (GroupRecommend,
// GroupRecommendBruteForce, GroupRecommendMapReduce,
// GroupRecommendBatch, GroupRecommendStream) remain as thin wrappers
// that build a GroupQuery and delegate.
//
// The fairness machinery is scorer-agnostic: the per-member candidate
// scores it selects over come from a pluggable relevance backend
// (internal/scoring). GroupQuery.Scorer picks it per query — "user-cf"
// (the paper's §III.A model, the default), "item-cf" (item-based CF
// whose neighbor model scales with items instead of users, built
// lazily and rebuilt after writes), or "profile" (peers by
// profile-cosine, for cold raters with rich profiles) — and
// Config.Scorer changes the default. Per-member scoring fans out
// across the group in parallel, and assembled group-relevance inputs
// are memoized per (scorer, members, aggregation, K) with the same
// write-fencing discipline as the caches below them.
//
// Batch serving: many caregiver queries can be answered in one call,
// each with its own method and parameters. The similarity rows of
// every member are precomputed by a sharded worker pool, then the
// queries fan out across bounded workers — each entry carries its own
// result or error, and a cancelled context stops mid-batch:
//
//	queries := []fairhealth.GroupQuery{
//		{Members: []string{"alice", "bob"}, Z: 10},
//		{Members: []string{"bob", "carol", "dan"}, Z: 5, Method: fairhealth.MethodBrute, BruteM: 20},
//	}
//	batch, _ := sys.ServeBatch(ctx, queries)
//	for _, e := range batch {
//		if e.Err == nil {
//			fmt.Println(e.Group, e.Result.Items, e.Result.Fairness)
//		}
//	}
//
// ServeStream is the incremental variant: entries are yielded to a
// callback as each query completes (completion order, Index links an
// entry back to its request slot) instead of buffering the whole batch
// — the backing of the HTTP API's NDJSON streaming mode:
//
//	_ = sys.ServeStream(ctx, queries, func(e fairhealth.BatchGroupResult) error {
//		fmt.Println(e.Index, e.Group, e.Err)
//		return nil // a non-nil error stops the stream
//	})
//
// Invalidation is scoped, so caches stay warm under mixed read/write
// traffic: a rating write to user u evicts only u's similarity row and
// the peer sets u could have moved (the ratings store reports the
// touched user, and every cache layer evicts by user instead of
// flushing). Profile writes rebuild profile-derived state, so they
// still flush everything, as does the explicit InvalidateCaches. Reads
// racing a write may see either side of it; once writes quiesce,
// served scores are bit-identical to a freshly built system's.
//
// Both memoization layers (the similarity memo and the peer-set cache)
// ride the shared internal/cache engine: Config.CacheTTL ages
// long-idle entries out across requests and Config.CacheMaxEntries
// LRU-bounds each layer; System.CacheStats (and GET /v1/stats) report
// hits, misses, evictions, expirations, and live entry counts. With a
// TTL configured, call Close when discarding the System so the
// background janitors stop.
//
// For read-heavy deployments, PrecomputeSimilarity materializes the
// full pairwise similarity matrix in parallel ahead of traffic;
// Config.Workers bounds both pools (default GOMAXPROCS).
package fairhealth

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairhealth/internal/cache"
	"fairhealth/internal/candidates"
	"fairhealth/internal/cf"
	"fairhealth/internal/core"
	"fairhealth/internal/group"
	"fairhealth/internal/model"
	"fairhealth/internal/ontology"
	"fairhealth/internal/phr"
	"fairhealth/internal/ratings"
	"fairhealth/internal/reasoning"
	"fairhealth/internal/scoring"
	"fairhealth/internal/search"
	"fairhealth/internal/simfn"
	"fairhealth/internal/snomed"
	"fairhealth/internal/wal"
)

// Public errors.
var (
	// ErrBadConfig reports an invalid Config.
	ErrBadConfig = errors.New("fairhealth: bad config")
	// ErrUnknownPatient reports an unregistered patient ID.
	ErrUnknownPatient = errors.New("fairhealth: unknown patient")
	// ErrEmptyGroup reports an empty or invalid group.
	ErrEmptyGroup = errors.New("fairhealth: empty group")
)

// SimilarityKind selects the §V measure used for peer discovery.
type SimilarityKind string

// Available similarity kinds.
const (
	// SimilarityRatings is Pearson correlation over co-rated items
	// (Eq. 2), normalized to [0,1].
	SimilarityRatings SimilarityKind = "ratings"
	// SimilarityProfile is cosine similarity over TF-IDF vectors of
	// rendered patient profiles (Def. 4 + Eq. 3).
	SimilarityProfile SimilarityKind = "profile"
	// SimilaritySemantic is ontology path similarity of coded health
	// problems aggregated by harmonic mean (Eq. 4).
	SimilaritySemantic SimilarityKind = "semantic"
	// SimilarityHybrid blends all three with Config.HybridWeights.
	SimilarityHybrid SimilarityKind = "hybrid"
)

// HybridWeights weights the components of SimilarityHybrid.
type HybridWeights struct {
	Ratings, Profile, Semantic float64
}

// Config tunes a System. The zero value is usable: δ=0.5, MinOverlap=2,
// K=10, ratings similarity, average aggregation.
type Config struct {
	// Delta is the peer threshold δ of Def. 1, applied to similarities
	// normalized into [0,1].
	Delta float64
	// MinOverlap is the minimum co-rated items for ratings similarity.
	MinOverlap int
	// K sizes each member's personal top-k list A_u (fairness Def. 3).
	K int
	// Similarity selects the §V measure (default SimilarityRatings).
	Similarity SimilarityKind
	// HybridWeights applies when Similarity == SimilarityHybrid
	// (default 1/1/1).
	HybridWeights HybridWeights
	// Aggregation selects the Def. 2 semantics: "avg" (majority,
	// default), "min" (veto), or the extensions "max", "median" and
	// "consensus" (Amer-Yahia et al. [1], relevance + agreement). The
	// MapReduce path supports only the paper's "avg" and "min".
	Aggregation string
	// Scorer selects the default relevance backend for queries that
	// leave GroupQuery.Scorer empty: "user-cf" (the paper's §III.A
	// model, the default), "item-cf" (item-based CF over
	// internal/itemcf), "profile" (peers by profile-cosine), or any
	// in-tree scorer registered with internal/scoring (the registry is
	// an internal extension point — registration happens inside this
	// module). The mapreduce method serves only user-cf.
	Scorer string
	// Workers bounds the worker pools of the parallel similarity
	// precompute (PrecomputeSimilarity) and the batch group API
	// (GroupRecommendBatch). 0 means runtime.GOMAXPROCS at call time.
	Workers int
	// CacheTTL bounds how long memoized similarity rows and peer sets
	// stay live across requests: entries older than the TTL answer as
	// misses and are reaped (lazily on lookup plus a background
	// janitor), so long-idle entries age out instead of living forever.
	// 0 keeps the historical behavior (entries live until evicted by a
	// write); negative is ErrBadConfig. With a TTL set, call Close when
	// discarding the System so the janitor goroutines stop.
	CacheTTL time.Duration
	// CacheMaxEntries caps each cache layer (the similarity memo table
	// and the peer-set cache, independently); inserts beyond the cap
	// evict least-recently-used entries. 0 means unbounded; negative is
	// ErrBadConfig.
	CacheMaxEntries int
	// CacheMaxCost caps each cache layer by summed entry cost instead
	// of entry count: a memoized similarity pair costs 1, a peer set
	// len(peers)+1, a group-input memo entry its total candidate
	// scores — so one budget number bounds resident scored values even
	// when entry sizes vary wildly. Inserts beyond the budget evict
	// least-recently-used entries (an entry larger than the whole
	// budget is still admitted, alone). 0 means unbounded; negative is
	// ErrBadConfig. Composes with CacheMaxEntries — whichever bound
	// trips first evicts.
	CacheMaxCost int64
	// CacheTTLMin and CacheTTLMax, when both set, enable TTL
	// adaptation: a background loop (period CacheAdaptEvery) reads each
	// layer's hit/miss/expiry deltas and entry-age histogram and
	// retargets its lease within [CacheTTLMin, CacheTTLMax] — growing
	// when expiry is driving misses, shrinking when the table is all
	// young (see internal/cache.AdviseTTL). Requires CacheTTL > 0 (the
	// starting lease) with CacheTTLMin ≤ CacheTTL ≤ CacheTTLMax.
	// Adaptation only changes when entries die, never what a hit
	// returns: warm answers stay bit-identical to cold rebuilds under
	// every lease the advisor picks.
	CacheTTLMin time.Duration
	CacheTTLMax time.Duration
	// CacheAdaptEvery is the adaptation period; 0 defaults to 10s when
	// adaptation is enabled, negative is ErrBadConfig. Ignored without
	// CacheTTLMin/CacheTTLMax.
	CacheAdaptEvery time.Duration
	// CandidateIndex enables the cluster peer-candidate index
	// (internal/candidates): exact-mode queries prefilter the peer
	// scan to users who can actually qualify under MinOverlap
	// (bit-identical to a full scan, but sublinear in the user count
	// for sparse data), and queries may opt into approx mode
	// (GroupQuery.Approx) restricting peer discovery to the query
	// user's cluster neighborhood. The index is maintained
	// incrementally from rating writes and rebuilt in the background
	// past a write-count or drift threshold. Off by default.
	CandidateIndex bool
	// CandidateK is the cluster count for the candidate index; 0 picks
	// ⌈√n⌉ at build time. Negative, or non-zero without
	// CandidateIndex, is ErrBadConfig.
	CandidateK int
	// Partitions requests partitioned serving: users are consistent-
	// hashed across this many in-process partitions behind a fan-out /
	// merge coordinator (internal/partition, surfaced as iphrd
	// -partitions). The System itself ignores the field — a single
	// System IS one partition — it lives here so one Config describes a
	// deployment end to end. 0 or 1 means unpartitioned; negative is
	// ErrBadConfig.
	Partitions int
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta == 0 {
		c.Delta = 0.5
	}
	if c.Delta < 0 || c.Delta > 1 {
		return c, fmt.Errorf("%w: delta %v outside [0,1]", ErrBadConfig, c.Delta)
	}
	if c.MinOverlap <= 0 {
		c.MinOverlap = 2
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Similarity == "" {
		c.Similarity = SimilarityRatings
	}
	switch c.Similarity {
	case SimilarityRatings, SimilarityProfile, SimilaritySemantic, SimilarityHybrid:
	default:
		return c, fmt.Errorf("%w: similarity %q", ErrBadConfig, c.Similarity)
	}
	if c.HybridWeights == (HybridWeights{}) {
		c.HybridWeights = HybridWeights{Ratings: 1, Profile: 1, Semantic: 1}
	}
	if c.Aggregation == "" {
		c.Aggregation = "avg"
	}
	if _, err := group.ParseAggregator(c.Aggregation); err != nil {
		return c, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.Scorer == "" {
		c.Scorer = scoring.DefaultName
	}
	if !scoring.Registered(c.Scorer) {
		return c, fmt.Errorf("%w: unknown scorer %q (registered: %s)",
			ErrBadConfig, c.Scorer, strings.Join(scoring.Names(), "|"))
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("%w: workers %d must be ≥ 0", ErrBadConfig, c.Workers)
	}
	if c.CacheTTL < 0 {
		return c, fmt.Errorf("%w: cache ttl %v must be ≥ 0 (0 disables expiry)", ErrBadConfig, c.CacheTTL)
	}
	if c.CacheMaxEntries < 0 {
		return c, fmt.Errorf("%w: cache max entries %d must be ≥ 0 (0 means unbounded)", ErrBadConfig, c.CacheMaxEntries)
	}
	if c.CacheMaxCost < 0 {
		return c, fmt.Errorf("%w: cache max cost %d must be ≥ 0 (0 means unbounded)", ErrBadConfig, c.CacheMaxCost)
	}
	if c.CacheAdaptEvery < 0 {
		return c, fmt.Errorf("%w: cache adapt period %v must be ≥ 0", ErrBadConfig, c.CacheAdaptEvery)
	}
	if c.CacheTTLMin != 0 || c.CacheTTLMax != 0 {
		if c.CacheTTL <= 0 {
			return c, fmt.Errorf("%w: cache ttl adaptation needs a starting CacheTTL > 0", ErrBadConfig)
		}
		if c.CacheTTLMin <= 0 || c.CacheTTLMax <= 0 ||
			c.CacheTTLMin > c.CacheTTL || c.CacheTTL > c.CacheTTLMax {
			return c, fmt.Errorf("%w: cache ttl bounds need 0 < min %v ≤ ttl %v ≤ max %v",
				ErrBadConfig, c.CacheTTLMin, c.CacheTTL, c.CacheTTLMax)
		}
		if c.CacheAdaptEvery == 0 {
			c.CacheAdaptEvery = 10 * time.Second
		}
	} else if c.CacheAdaptEvery > 0 {
		return c, fmt.Errorf("%w: cache adapt period set without CacheTTLMin/CacheTTLMax bounds", ErrBadConfig)
	}
	if c.CandidateK < 0 {
		return c, fmt.Errorf("%w: candidate k %d must be ≥ 0 (0 picks √n)", ErrBadConfig, c.CandidateK)
	}
	if c.CandidateK > 0 && !c.CandidateIndex {
		return c, fmt.Errorf("%w: candidate k set without CandidateIndex", ErrBadConfig)
	}
	if c.Partitions < 0 {
		return c, fmt.Errorf("%w: partitions %d must be ≥ 0 (0 means unpartitioned)", ErrBadConfig, c.Partitions)
	}
	return c, nil
}

// Patient is a public mirror of a personal health record profile.
type Patient struct {
	ID          string
	Age         int
	Gender      string
	Problems    []string // ontology concept codes (see snomed)
	Medications []string
	Procedures  []string
	Allergies   []string
	Notes       string
}

// Recommendation is one scored item.
type Recommendation struct {
	Item  string
	Score float64
}

// Peer is a similar user with its similarity score.
type Peer struct {
	User       string
	Similarity float64
}

// GroupResult is the outcome of a fairness-aware group recommendation.
type GroupResult struct {
	// Items are the selected recommendations with their GROUP scores
	// (Def. 2 under the configured aggregation), in selection order.
	Items []Recommendation
	// Fairness is |G_D|/|G| (Def. 3).
	Fairness float64
	// Value is fairness × Σ group scores — the paper's objective.
	Value float64
	// PerMember exposes each member's personal top-k list A_u.
	PerMember map[string][]Recommendation
	// Combinations is the number of candidate subsets scored (brute
	// force only).
	Combinations int64
}

// SearchResult is one document search hit (Fig. 1's search engine).
type SearchResult struct {
	Item  string
	Title string
	Score float64
}

// Stats summarizes system contents.
type Stats struct {
	Users     int
	Items     int
	Ratings   int
	Patients  int
	Documents int
	Sparsity  float64
}

// System is the recommender facade. Create it with New; it is safe for
// concurrent use.
type System struct {
	cfg Config

	ratings  *ratings.Store
	profiles *phr.Store
	ont      *ontology.Ontology
	index    *search.Index
	walLog   *wal.Log // nil for in-memory systems
	walPath  string

	mu       sync.Mutex // guards the caches below
	simCache *simfn.Cached
	simDirty bool
	pcDirty  bool
	pc       *simfn.ProfileCosine
	pcBuilt  bool

	// simBase accumulates the counters of similarity caches discarded
	// by full invalidations, so CacheStats reports lifetime totals
	// rather than resetting on every profile write.
	simBase CacheCounters

	// peerCache memoizes P_u across requests. Rating writes evict it
	// per touched user (invalidateUsers); profile writes flush it
	// (invalidateAll). cf.PeerCache is generation- and sequence-
	// checked, so an in-flight computation cannot resurrect a stale
	// set.
	peerCache *cf.PeerCache

	// providers holds the lazily built relevance backends, one per
	// scorer name used so far (the item-cf neighbor model, for
	// example, is never built unless a query asks for it).
	provMu    sync.Mutex
	providers map[string]scoring.Provider

	// candIdx is the cluster peer-candidate index over mean-centered
	// rating vectors (nil unless Config.CandidateIndex). Exact-mode
	// recommenders consult its posting-list prefilter; approx-mode
	// recommenders scan its cluster neighborhoods. Rating writes flow
	// to it through invalidateUsers.
	candIdx *candidates.Index

	// groupCache memoizes assembled group-relevance inputs per
	// (scorer, members, aggregation, K) over the shared cache engine.
	// Every entry is scoped under the single ratings scope: a member's
	// relevance is a function of potentially every user's ratings (any
	// rater can be or become a peer), so a rating write to anyone
	// evicts the whole layer — but the eviction is sequence-fenced, so
	// an assembly in flight across a write is refused at store time
	// and a warm hit is always bit-identical to a cold rebuild.
	// Profile writes flush it via invalidateAll.
	groupCache *cache.Cache[string, string, groupInput]

	// TTL adaptation state (Config.CacheTTLMin/Max): adaptPrev holds
	// the previous tick's lifetime counters per layer so each
	// AdaptCacheTTLOnce call advises on a delta window; simTTL carries
	// the adapted similarity lease across full invalidations (the memo
	// table is rebuilt on profile writes, and a rebuild must not reset
	// the lease the advisor converged on). adaptStop ends the
	// background loop; Close fires it once and waits on adaptDone so
	// no adaptation tick can race the cache teardown that follows.
	adaptMu   sync.Mutex
	adaptPrev [3]ttlWindow
	adaptStop chan struct{}
	adaptDone chan struct{}
	stopAdapt sync.Once
	simTTL    atomic.Int64
}

// ttlWindow is one cache layer's lifetime counters at the previous
// adaptation tick — the baseline the next tick's deltas subtract.
type ttlWindow struct {
	hits, misses, expirations uint64
}

// groupScopeRatings is the one eviction scope every group-input memo
// entry carries (see System.groupCache).
const groupScopeRatings = "ratings"

// groupInput is a memoized assembled group problem: the inputs both
// in-memory fair solvers consume, keyed by (scorer, members,
// aggregation, K). All maps are read-only after assembly — solvers and
// result shaping never mutate them — so entries are shared across
// concurrent queries without copying.
type groupInput struct {
	group    model.Group
	perUser  map[model.UserID]map[model.ItemID]float64
	groupRel map[model.ItemID]float64
	lists    core.UserLists
}

// New builds a System with the curated mini-SNOMED ontology.
func New(cfg Config) (*System, error) {
	return NewWithOntology(cfg, snomed.Load())
}

// NewWithOntology builds a System over a caller-provided ontology
// (e.g. a generated one for scale experiments).
func NewWithOntology(cfg Config, ont *ontology.Ontology) (*System, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sys := &System{
		cfg:      c,
		ratings:  ratings.New(),
		profiles: phr.NewStore(ont),
		ont:      ont,
		index:    search.NewIndex(nil),
		simDirty: true,
		pcDirty:  true,
		peerCache: cf.NewPeerCacheWith(cf.PeerCacheOptions{
			TTL:        c.CacheTTL,
			MaxEntries: c.CacheMaxEntries,
			MaxCost:    c.CacheMaxCost,
		}),
		providers: make(map[string]scoring.Provider),
		groupCache: cache.New[string, string, groupInput](cache.Config[string, groupInput]{
			Hash:       func(k string) uint32 { return cache.FNV1a(k) },
			TTL:        c.CacheTTL,
			MaxEntries: c.CacheMaxEntries,
			MaxCost:    c.CacheMaxCost,
			Cost:       groupInputCost,
		}),
	}
	if c.CandidateIndex {
		sys.candIdx = candidates.NewRatings(sys.ratings, candidates.Config{K: c.CandidateK, Seed: 1})
	}
	// Every rating write — direct, CSV bulk load, or WAL replay —
	// reports its touched user here, and the scoped invalidation routes
	// it down the cache layers.
	sys.ratings.OnWrite(func(u model.UserID) { sys.invalidateUsers(u) })
	if c.CacheTTLMin > 0 && c.CacheTTLMax > 0 {
		sys.adaptStop = make(chan struct{})
		sys.adaptDone = make(chan struct{})
		go sys.adaptLoop(c.CacheAdaptEvery)
	}
	return sys, nil
}

// groupInputCost prices a memoized group problem for the cost bound:
// its resident scored values — every per-member candidate score plus
// the aggregated group scores — so a 10-member group with wide
// candidate sets weighs what it holds, not 1.
func groupInputCost(_ string, in groupInput) int64 {
	n := int64(len(in.groupRel)) + 1
	for _, scores := range in.perUser {
		n += int64(len(scores))
	}
	return n
}

// Config returns the effective (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// NewPersistent builds a System whose ratings and profiles survive
// restarts: state is replayed from dir/events.wal on start and every
// successful write is appended to it (write-ahead, flushed before the
// in-memory apply). Call Close when done and CompactLog occasionally
// to fold the log down to current state.
func NewPersistent(cfg Config, dir string) (*System, error) {
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fairhealth: create state dir: %w", err)
	}
	path := filepath.Join(dir, "events.wal")
	if _, statErr := os.Stat(path); statErr == nil {
		if _, err := wal.ReplayFile(path, sys.applyRecord); err != nil {
			return nil, fmt.Errorf("fairhealth: replay %s: %w", path, err)
		}
	}
	log, err := wal.Open(path)
	if err != nil {
		return nil, err
	}
	sys.walLog = log
	sys.walPath = path
	sys.invalidateAll()
	return sys, nil
}

// ApplyRecord applies one WAL record to the in-memory state — the
// replication seam partitioned serving uses to keep every replica a
// deterministic function of the shared log. Rating records route their
// touched user down the cache layers through the store's write
// observer; patient records flush globally, exactly like AddPatient.
// The record is applied verbatim (no WAL append): the caller owns the
// log.
func (s *System) ApplyRecord(rec wal.Record) error {
	if err := s.applyRecord(rec); err != nil {
		return err
	}
	if rec.Op == wal.OpPatient {
		// Profile text and problem codes feed every pairwise measure —
		// the same global blast radius as AddPatient.
		s.invalidateAll()
	}
	return nil
}

func (s *System) applyRecord(rec wal.Record) error {
	switch rec.Op {
	case wal.OpRate:
		return s.ratings.Add(rec.User, rec.Item, rec.Value)
	case wal.OpUnrate:
		if err := s.ratings.Remove(rec.User, rec.Item); err != nil && !errors.Is(err, ratings.ErrNotFound) {
			return err
		}
		return nil
	case wal.OpPatient:
		if rec.Patient == nil {
			return errors.New("fairhealth: patient record without payload")
		}
		if s.profiles.Has(rec.Patient.ID) {
			return s.profiles.Update(rec.Patient)
		}
		return s.profiles.Put(rec.Patient)
	default:
		return fmt.Errorf("fairhealth: unknown wal op %q", rec.Op)
	}
}

// Close stops the background loops and cache janitor goroutines and
// releases the persistence log (the latter a no-op for in-memory
// systems). The caches themselves remain usable — only their
// background work stops. Required for TTL'd systems; harmless
// otherwise, and safe to call more than once.
//
// Teardown order matters: the loops that MUTATE caches stop first —
// the TTL-adaptation loop is signalled and awaited (a mid-tick SetTTL
// racing teardown was possible when Close only signalled it), and the
// candidate index waits out any background rebuild — and only then are
// the cache layers and providers closed. Partitioned serving closes N
// systems concurrently, which is exactly the schedule that surfaced
// the old ordering.
func (s *System) Close() error {
	if s.adaptStop != nil {
		s.stopAdapt.Do(func() { close(s.adaptStop) })
		<-s.adaptDone
	}
	if s.candIdx != nil {
		s.candIdx.Close()
	}
	s.mu.Lock()
	if s.simCache != nil {
		s.simCache.Close()
	}
	s.mu.Unlock()
	s.peerCache.Close()
	s.groupCache.Close()
	s.provMu.Lock()
	for _, p := range s.providers {
		p.Close()
	}
	s.provMu.Unlock()
	if s.walLog == nil {
		return nil
	}
	return s.walLog.Close()
}

// CompactLog rewrites the event log to current state, dropping
// superseded records, and reopens it for appends.
func (s *System) CompactLog() (records int, err error) {
	if s.walLog == nil {
		return 0, errors.New("fairhealth: system is not persistent")
	}
	if err := s.walLog.Close(); err != nil {
		return 0, err
	}
	n, err := wal.Compact(s.walPath, s.ratings, s.profiles)
	if err != nil {
		return 0, err
	}
	log, err := wal.Open(s.walPath)
	if err != nil {
		return n, err
	}
	s.walLog = log
	return n, nil
}

// ---------------------------------------------------------------------------
// ingest

// AddRating records that user rated item with value stars (1–5). On
// persistent systems the event is logged (and flushed) before the
// in-memory apply.
func (s *System) AddRating(user, item string, value float64) error {
	u, i, v := model.UserID(user), model.ItemID(item), model.Rating(value)
	if u == "" || i == "" {
		return ratings.ErrEmptyID
	}
	if err := v.Validate(); err != nil {
		return err
	}
	if s.walLog != nil {
		if _, err := s.walLog.AppendRating(u, i, v); err != nil {
			return err
		}
	}
	// The store's write observer routes the touched user down the cache
	// layers — no global invalidation.
	return s.ratings.Add(u, i, v)
}

// HasRating reports whether user has rated item.
func (s *System) HasRating(user, item string) bool {
	return s.ratings.HasRated(model.UserID(user), model.ItemID(item))
}

// RemoveRating deletes a rating.
func (s *System) RemoveRating(user, item string) error {
	u, i := model.UserID(user), model.ItemID(item)
	if !s.ratings.HasRated(u, i) {
		return fmt.Errorf("%w: %s/%s", ratings.ErrNotFound, user, item)
	}
	if s.walLog != nil {
		if _, err := s.walLog.AppendUnrate(u, i); err != nil {
			return err
		}
	}
	return s.ratings.Remove(u, i)
}

// LoadRatingsCSV bulk-loads "user,item,rating" rows (logged on
// persistent systems).
func (s *System) LoadRatingsCSV(r io.Reader) (int, error) {
	st, err := ratings.ReadCSV(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range st.Triples() {
		if err := s.AddRating(string(t.User), string(t.Item), float64(t.Value)); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// AddPatient registers (or replaces) a patient profile.
func (s *System) AddPatient(p Patient) error {
	prof := toProfile(p)
	if err := prof.Validate(s.ont); err != nil {
		return err
	}
	if s.walLog != nil {
		if _, err := s.walLog.AppendPatient(prof); err != nil {
			return err
		}
	}
	if s.profiles.Has(prof.ID) {
		if err := s.profiles.Update(prof); err != nil {
			return err
		}
	} else if err := s.profiles.Put(prof); err != nil {
		return err
	}
	// Profile text and problem codes feed the profile-cosine and
	// semantic measures for every pair, so the blast radius is global.
	s.invalidateAll()
	return nil
}

// PatientProfile converts and validates a Patient into its stored
// profile form without registering it — the write-path seam a
// partition coordinator uses to validate a profile once, append it to
// the shared WAL, and then replicate the record to every partition.
func (s *System) PatientProfile(p Patient) (*phr.Profile, error) {
	prof := toProfile(p)
	if err := prof.Validate(s.ont); err != nil {
		return nil, err
	}
	return prof, nil
}

// Patient returns the stored profile for id.
func (s *System) Patient(id string) (Patient, error) {
	prof, err := s.profiles.Get(model.UserID(id))
	if err != nil {
		return Patient{}, fmt.Errorf("%w: %s", ErrUnknownPatient, id)
	}
	return fromProfile(prof), nil
}

// Patients lists all registered patient IDs.
func (s *System) Patients() []string {
	ids := s.profiles.IDs()
	out := make([]string, len(ids))
	for k, id := range ids {
		out[k] = string(id)
	}
	return out
}

// CacheCounters is one cache layer's effectiveness snapshot.
type CacheCounters struct {
	// Hits and Misses count lookups answered from / past the cache
	// since the System was built (full invalidations do not reset
	// them).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries removed before natural expiry: scoped
	// per-user eviction after writes, LRU capacity eviction
	// (Config.CacheMaxEntries), and full invalidations.
	Evictions uint64 `json:"evictions"`
	// Expirations counts entries aged out by the TTL
	// (Config.CacheTTL).
	Expirations uint64 `json:"expirations"`
	// Entries is the number of entries currently cached.
	Entries int `json:"entries"`
	// Cost is the summed cost of the cached entries (similarity pairs
	// cost 1, peer sets len(peers)+1, group inputs their total
	// candidate scores) — the quantity Config.CacheMaxCost bounds.
	Cost int64 `json:"cost"`
	// TTLSeconds is the layer's CURRENT lease. It starts at
	// Config.CacheTTL and moves within [CacheTTLMin, CacheTTLMax] when
	// TTL adaptation is enabled; 0 means no expiry.
	TTLSeconds float64 `json:"ttl_seconds"`
	// Ages buckets the stored entries by age (expired-but-unreaped
	// entries included at their true age, so the buckets total Entries
	// up to the skew of concurrent writes — the histogram and the
	// counters are separate snapshots) — the feed for tuning
	// Config.CacheTTL from production traffic (a mass in the overflow
	// bucket under a generous TTL means the lease could shrink without
	// costing hits).
	Ages CacheAgeHistogram `json:"age_histogram"`
}

// ageBounds are the bucket upper bounds of every reported entry-age
// histogram.
var ageBounds = []time.Duration{10 * time.Second, time.Minute, 10 * time.Minute, time.Hour}

// CacheAgeHistogram buckets a cache layer's live entries by age.
type CacheAgeHistogram struct {
	// BoundsSeconds are the ascending bucket upper bounds, in seconds.
	BoundsSeconds []float64 `json:"bounds_seconds"`
	// Counts has len(BoundsSeconds)+1 elements: Counts[i] is the
	// number of entries no older than BoundsSeconds[i] (and older than
	// the previous bound); the final element counts entries older than
	// every bound.
	Counts []int `json:"counts"`
}

// ageHistogram shapes raw bucket counts into the public histogram.
func ageHistogram(counts []int) CacheAgeHistogram {
	bounds := make([]float64, len(ageBounds))
	for i, b := range ageBounds {
		bounds[i] = b.Seconds()
	}
	if counts == nil {
		counts = make([]int, len(ageBounds)+1)
	}
	return CacheAgeHistogram{BoundsSeconds: bounds, Counts: counts}
}

// CacheStats reports the hit/miss/size counters of the memoization
// layers — the observability feed for cache tuning (e.g. watching a
// TTL'd warm cache age entries out). All counters are collected from
// atomic, race-safe sources; Stats and CacheStats are cheap enough to
// poll.
type CacheStats struct {
	// Similarity is the pairwise similarity memo table.
	Similarity CacheCounters `json:"similarity"`
	// Peers is the per-user peer-set (P_u) cache.
	Peers CacheCounters `json:"peers"`
	// Groups is the assembled group-relevance input memo, keyed by
	// (scorer, members, aggregation, K).
	Groups CacheCounters `json:"groups"`
}

// CacheStats returns the current cache effectiveness counters.
func (s *System) CacheStats() CacheStats {
	// Snapshot the memo pointer under s.mu but walk it after release:
	// the age scan is O(entries) over a pairwise table, and holding the
	// System mutex across it would let a stats scrape stall writes and
	// serves. The cache itself is safe for concurrent use (a racing
	// full invalidation at worst hands us the outgoing table, whose
	// counters the base already absorbed at swap time).
	s.mu.Lock()
	sim := s.simBase
	simCache := s.simCache
	s.mu.Unlock()
	sim.Ages = ageHistogram(nil)
	sim.TTLSeconds = s.simLease().Seconds()
	if simCache != nil {
		st := simCache.Stats()
		sim.Hits += st.Hits
		sim.Misses += st.Misses
		sim.Evictions += st.Evictions
		sim.Expirations += st.Expirations
		sim.Entries = st.Entries
		sim.Cost = st.Cost
		sim.Ages = ageHistogram(simCache.AgeHistogram(ageBounds))
	}
	ps := s.peerCache.Stats()
	gs := s.groupCache.Stats()
	return CacheStats{
		Similarity: sim,
		Peers: CacheCounters{
			Hits:        ps.Hits,
			Misses:      ps.Misses,
			Evictions:   ps.Evictions,
			Expirations: ps.Expirations,
			Entries:     ps.Entries,
			Cost:        ps.Cost,
			TTLSeconds:  s.peerCache.TTL().Seconds(),
			Ages:        ageHistogram(s.peerCache.AgeHistogram(ageBounds)),
		},
		Groups: CacheCounters{
			Hits:        gs.Hits,
			Misses:      gs.Misses,
			Evictions:   gs.Evictions,
			Expirations: gs.Expirations,
			Entries:     gs.Entries,
			Cost:        gs.Cost,
			TTLSeconds:  s.groupCache.TTL().Seconds(),
			Ages:        ageHistogram(s.groupCache.AgeHistogram(ageBounds)),
		},
	}
}

// simLease is the similarity layer's current lease: the live memo
// table's if one exists, else the advisor's last pick (applied to the
// next rebuild), else the configured start.
func (s *System) simLease() time.Duration {
	s.mu.Lock()
	simCache := s.simCache
	s.mu.Unlock()
	if simCache != nil {
		return simCache.TTL()
	}
	if adapted := time.Duration(s.simTTL.Load()); adapted > 0 {
		return adapted
	}
	return s.cfg.CacheTTL
}

// adaptLoop drives TTL adaptation until Close. adaptDone signals loop
// exit so Close can sequence cache teardown after the final tick.
func (s *System) adaptLoop(every time.Duration) {
	defer close(s.adaptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.adaptStop:
			return
		case <-t.C:
			s.AdaptCacheTTLOnce()
		}
	}
}

// AdaptCacheTTLOnce runs one TTL-adaptation tick: for each shared
// cache layer (similarity memo, peer cache, group-input memo) it feeds
// the hit/miss/expiry deltas since the previous tick plus a fresh
// entry-age histogram to cache.AdviseTTL and applies the advice within
// [Config.CacheTTLMin, Config.CacheTTLMax]. A no-op unless adaptation
// is configured. The background loop calls this every
// Config.CacheAdaptEvery; it is exported so tests and ops tooling can
// step adaptation deterministically.
//
// Adaptation moves each lease independently — layers see different
// traffic (one similarity row serves many peer lookups) — and only
// changes when entries die: an expired entry is recomputed from the
// same stores, so a warm hit stays bit-identical to a cold rebuild
// under every lease this picks.
func (s *System) AdaptCacheTTLOnce() {
	lo, hi := s.cfg.CacheTTLMin, s.cfg.CacheTTLMax
	if lo <= 0 || hi <= 0 {
		return
	}
	s.adaptMu.Lock()
	defer s.adaptMu.Unlock()

	// Similarity memo: lifetime counters are discarded-table base plus
	// the live table, the same bookkeeping as CacheStats.
	s.mu.Lock()
	base := s.simBase
	simCache := s.simCache
	s.mu.Unlock()
	if simCache != nil {
		st := simCache.Stats()
		cur := simCache.TTL()
		w := ttlWindow{base.Hits + st.Hits, base.Misses + st.Misses, base.Expirations + st.Expirations}
		next := cache.AdviseTTL(cur, lo, hi, cache.TTLSignal{
			Hits:        counterDelta(w.hits, s.adaptPrev[0].hits),
			Misses:      counterDelta(w.misses, s.adaptPrev[0].misses),
			Expirations: counterDelta(w.expirations, s.adaptPrev[0].expirations),
			AgeCounts:   simCache.AgeHistogram(cache.AdviceBounds(cur)),
		})
		s.adaptPrev[0] = w
		if next != cur {
			simCache.SetTTL(next)
		}
		s.simTTL.Store(int64(next))
	}

	ps := s.peerCache.Stats()
	curP := s.peerCache.TTL()
	nextP := cache.AdviseTTL(curP, lo, hi, cache.TTLSignal{
		Hits:        counterDelta(ps.Hits, s.adaptPrev[1].hits),
		Misses:      counterDelta(ps.Misses, s.adaptPrev[1].misses),
		Expirations: counterDelta(ps.Expirations, s.adaptPrev[1].expirations),
		AgeCounts:   s.peerCache.AgeHistogram(cache.AdviceBounds(curP)),
	})
	s.adaptPrev[1] = ttlWindow{ps.Hits, ps.Misses, ps.Expirations}
	if nextP != curP {
		s.peerCache.SetTTL(nextP)
	}

	gs := s.groupCache.Stats()
	curG := s.groupCache.TTL()
	nextG := cache.AdviseTTL(curG, lo, hi, cache.TTLSignal{
		Hits:        counterDelta(gs.Hits, s.adaptPrev[2].hits),
		Misses:      counterDelta(gs.Misses, s.adaptPrev[2].misses),
		Expirations: counterDelta(gs.Expirations, s.adaptPrev[2].expirations),
		AgeCounts:   s.groupCache.AgeHistogram(cache.AdviceBounds(curG)),
	})
	s.adaptPrev[2] = ttlWindow{gs.Hits, gs.Misses, gs.Expirations}
	if nextG != curG {
		s.groupCache.SetTTL(nextG)
	}
}

// counterDelta is a saturating now−prev over monotonic counters (a
// racing snapshot can observe components out of order).
func counterDelta(now, prev uint64) uint64 {
	if now < prev {
		return 0
	}
	return now - prev
}

// CandidateIndexStats snapshots the cluster peer-candidate index
// counters (the /v1/stats "index" section); ok is false when
// Config.CandidateIndex is off. The clustering builds lazily on the
// first approx query, so Built may be false under exact-only traffic
// — the exact prefilter reads item postings, not the clustering.
func (s *System) CandidateIndexStats() (candidates.Stats, bool) {
	if s.candIdx == nil {
		return candidates.Stats{}, false
	}
	return s.candIdx.Stats(), true
}

// Stats reports system contents.
func (s *System) Stats() Stats {
	return Stats{
		Users:     s.ratings.NumUsers(),
		Items:     s.ratings.NumItems(),
		Ratings:   s.ratings.Len(),
		Patients:  s.profiles.Len(),
		Documents: s.index.Len(),
		Sparsity:  s.ratings.Sparsity(),
	}
}

// AddDocument indexes a recommendable document in the Fig. 1 search
// engine. The document ID doubles as the rating item ID, so "search,
// read, rate" round-trips work against the same identifier.
func (s *System) AddDocument(id, title, body string) error {
	return s.index.Add(model.ItemID(id), title, body)
}

// SearchDocuments ranks indexed documents against a free-text query
// (TF-IDF, see internal/search) and returns the top k.
func (s *System) SearchDocuments(query string, k int) []SearchResult {
	hits := s.index.Search(query, k)
	out := make([]SearchResult, len(hits))
	for i, h := range hits {
		out[i] = SearchResult{Item: string(h.Doc), Title: h.Title, Score: h.Score}
	}
	return out
}

// DocumentTitle resolves an indexed document's title.
func (s *System) DocumentTitle(id string) (string, bool) {
	return s.index.Title(model.ItemID(id))
}

// SearchPersonalized ranks documents for a free-text query boosted by
// the patient's (ontology-expanded) problem vocabulary — the
// semantically enhanced retrieval of the paper's §VIII future work.
// boost ≤ 0 degrades to plain SearchDocuments.
func (s *System) SearchPersonalized(user, query string, k int, boost float64) ([]SearchResult, error) {
	eng := reasoning.New(s.ont, s.profiles)
	hits, err := eng.PersonalizedSearch(s.index, model.UserID(user), query, k, boost)
	if err != nil {
		if errors.Is(err, reasoning.ErrNoProfile) {
			return nil, fmt.Errorf("%w: %s", ErrUnknownPatient, user)
		}
		return nil, err
	}
	out := make([]SearchResult, len(hits))
	for i, h := range hits {
		out[i] = SearchResult{Item: string(h.Doc), Title: h.Title, Score: h.Score}
	}
	return out, nil
}

// Correspondence is a public mirror of a reasoning explanation: why two
// patients' profiles relate.
type Correspondence struct {
	ProblemA, ProblemB string
	CommonAncestor     string
	Distance           int
	Explanation        string
}

// ProfileCorrespondences explains every problem-pair link between two
// patients, strongest first (the §VIII "reasoning engine to identify
// correspondences in patient profiles").
func (s *System) ProfileCorrespondences(a, b string) ([]Correspondence, error) {
	eng := reasoning.New(s.ont, s.profiles)
	cs, err := eng.Correspondences(model.UserID(a), model.UserID(b))
	if err != nil {
		if errors.Is(err, reasoning.ErrNoProfile) {
			return nil, fmt.Errorf("%w: %v", ErrUnknownPatient, err)
		}
		return nil, err
	}
	out := make([]Correspondence, len(cs))
	for i, c := range cs {
		out[i] = Correspondence{
			ProblemA:       string(c.ProblemA),
			ProblemB:       string(c.ProblemB),
			CommonAncestor: string(c.CommonAncestor),
			Distance:       c.Distance,
			Explanation:    c.Explanation,
		}
	}
	return out, nil
}

func toProfile(p Patient) *phr.Profile {
	problems := make([]ontology.ConceptID, len(p.Problems))
	for k, c := range p.Problems {
		problems[k] = ontology.ConceptID(c)
	}
	return &phr.Profile{
		ID:          model.UserID(p.ID),
		Age:         p.Age,
		Gender:      phr.Gender(p.Gender),
		Problems:    problems,
		Medications: append([]string(nil), p.Medications...),
		Procedures:  append([]string(nil), p.Procedures...),
		Allergies:   append([]string(nil), p.Allergies...),
		Notes:       p.Notes,
	}
}

func fromProfile(prof *phr.Profile) Patient {
	problems := make([]string, len(prof.Problems))
	for k, c := range prof.Problems {
		problems[k] = string(c)
	}
	return Patient{
		ID:          string(prof.ID),
		Age:         prof.Age,
		Gender:      string(prof.Gender),
		Problems:    problems,
		Medications: append([]string(nil), prof.Medications...),
		Procedures:  append([]string(nil), prof.Procedures...),
		Allergies:   append([]string(nil), prof.Allergies...),
		Notes:       prof.Notes,
	}
}

// ---------------------------------------------------------------------------
// similarity wiring

// invalidateUsers routes a rating write down the cache layers with
// user scope: the touched users' similarity rows are evicted first,
// then their peer sets. The order matters — a peer-cache fence
// captured after EvictUsers can only observe post-eviction similarity
// rows, so a peer set stored under that fence is built from post-write
// data (simfn.Cached's own eviction sequencing fences off lookups that
// were already in flight). Everything not reachable from the touched
// users stays warm: Pearson(v,w) is a function of v's and w's ratings
// only, so no other entry can have changed.
//
// Below the shared layers, the write fans out to every built scoring
// provider (the item-cf neighbor model goes lazily dirty; user-cf and
// profile need nothing) and, LAST, evicts the group-input memo — its
// scope eviction bumps the memo's fence sequence, so an assembly that
// read any pre-write state upstream is refused at store time.
func (s *System) invalidateUsers(users ...model.UserID) {
	s.mu.Lock()
	if s.simCache != nil {
		s.simCache.EvictRows(users)
	}
	s.mu.Unlock()
	s.peerCache.EvictUsers(users)
	s.provMu.Lock()
	for _, p := range s.providers {
		p.InvalidateUsers(users)
	}
	s.provMu.Unlock()
	s.groupCache.EvictScopes([]string{groupScopeRatings})
	if s.candIdx != nil {
		// After the cache layers: the index is never consulted for
		// bit-identity (exact prefilter reads live postings), so the
		// only requirement is that the write is counted toward the
		// reassignment/rebuild triggers.
		s.candIdx.OnWrite(users...)
	}
}

// invalidateAll flushes every cache layer — the route for profile
// writes (profile text and problem codes feed pairwise measures whose
// blast radius is the whole matrix) and for the explicit
// InvalidateCaches.
func (s *System) invalidateAll() {
	s.mu.Lock()
	s.simDirty = true
	s.pcDirty = true
	s.mu.Unlock()
	s.peerCache.Invalidate()
	s.provMu.Lock()
	for _, p := range s.providers {
		p.InvalidateAll()
	}
	s.provMu.Unlock()
	// Flushed last, so anything assembled from pre-flush upstream
	// state is generation-fenced out of the memo.
	s.groupCache.Invalidate()
	if s.candIdx != nil {
		s.candIdx.InvalidateAll()
	}
}

// InvalidateCaches drops all memoized state (similarity matrix,
// profile corpus, peer sets), forcing the next query to rebuild from
// the stores. Normal writes invalidate with user scope automatically;
// this is the big hammer for tests, benchmarks of cold-path cost, or
// out-of-band store surgery.
func (s *System) InvalidateCaches() { s.invalidateAll() }

func (s *System) profileCosine() (*simfn.ProfileCosine, error) {
	// caller holds s.mu
	if s.pcBuilt && !s.pcDirty {
		return s.pc, nil
	}
	pc, err := simfn.BuildProfileCosine(s.profiles, s.ont, nil)
	if err != nil {
		return nil, err
	}
	s.pc, s.pcBuilt, s.pcDirty = pc, true, false
	return pc, nil
}

// similarity assembles the configured measure, memoized until the next
// write invalidates it.
func (s *System) similarity() (*simfn.Cached, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.simCache != nil && !s.simDirty {
		return s.simCache, nil
	}
	if s.simCache != nil {
		// The old memo table is being discarded; keep its counters and
		// stop its janitor (in-flight queries still holding it are fine
		// — Close only ends the background sweep). Its live entries are
		// dropped by this full invalidation, so they count as evictions
		// — matching the peer cache, whose Invalidate counts the flush.
		st := s.simCache.Stats()
		s.simBase.Hits += st.Hits
		s.simBase.Misses += st.Misses
		s.simBase.Evictions += st.Evictions + uint64(st.Entries)
		s.simBase.Expirations += st.Expirations
		s.simCache.Close()
	}
	base, err := s.buildSimilarityLocked()
	if err != nil {
		return nil, err
	}
	s.simCache = simfn.NewCachedWith(base, simfn.CacheOptions{
		TTL:        s.cfg.CacheTTL,
		MaxEntries: s.cfg.CacheMaxEntries,
		MaxCost:    s.cfg.CacheMaxCost,
	})
	// A rebuild must not reset the lease the TTL advisor converged on.
	if adapted := time.Duration(s.simTTL.Load()); adapted > 0 {
		s.simCache.SetTTL(adapted)
	}
	s.simDirty = false
	return s.simCache, nil
}

func (s *System) buildSimilarityLocked() (simfn.UserSimilarity, error) {
	pearson := simfn.Normalized{S: simfn.Pearson{Store: s.ratings, MinOverlap: s.cfg.MinOverlap}}
	semantic := simfn.Semantic{Ont: s.ont, Problems: s.profiles.Problems}
	switch s.cfg.Similarity {
	case SimilarityRatings:
		return pearson, nil
	case SimilaritySemantic:
		return semantic, nil
	case SimilarityProfile:
		pc, err := s.profileCosine()
		if err != nil {
			return nil, err
		}
		return pc, nil
	case SimilarityHybrid:
		pc, err := s.profileCosine()
		if err != nil {
			return nil, err
		}
		return simfn.Weighted{Components: []simfn.Component{
			{S: pearson, Weight: s.cfg.HybridWeights.Ratings},
			{S: pc, Weight: s.cfg.HybridWeights.Profile},
			{S: semantic, Weight: s.cfg.HybridWeights.Semantic},
		}}, nil
	default:
		return nil, fmt.Errorf("%w: similarity %q", ErrBadConfig, s.cfg.Similarity)
	}
}

func (s *System) recommender() (*cf.Recommender, error) {
	// Capture the peer-cache fence BEFORE acquiring the similarity
	// snapshot. A full flush between the two steps bumps the
	// generation and drops any peer set computed from the older
	// snapshot (invalidateAll marks the similarity dirty before
	// bumping the generation, so a post-bump snapshot is always
	// fresh). A scoped eviction bumps the sequence instead: peer sets
	// stored under the older sequence are patched on their next read
	// for exactly the users evicted since (invalidateUsers evicts
	// similarity rows before peer sets, so the patch always reads
	// post-write similarities).
	gen, seq := s.peerCache.Fence()
	sim, err := s.similarity()
	if err != nil {
		return nil, err
	}
	rec := &cf.Recommender{
		Store:           s.ratings,
		Sim:             sim,
		Delta:           s.cfg.Delta,
		RequirePositive: true,
		Cache:           s.peerCache,
		CacheGen:        gen,
		CacheSeq:        seq,
	}
	if s.candIdx != nil && s.cfg.Similarity == SimilarityRatings {
		// Exact-mode prefilter: restrict the peer scan to users who
		// share ≥ MinOverlap co-rated items with the query user — the
		// only users the Pearson measure can ever report a defined
		// similarity for, so the restricted scan is bit-identical to
		// the full one (pinned by the equivalence tests). The set is
		// computed from the live item postings on every scan; cluster
		// staleness cannot leak into exact answers. Other similarity
		// kinds have no sound prefilter and keep the full scan.
		minOverlap := s.cfg.MinOverlap
		rec.Candidates = func(u model.UserID) []model.UserID {
			return s.candIdx.ExactPrefilter(u, minOverlap)
		}
	}
	return rec, nil
}

// recommenderApprox is the approx-mode factory: the peer scan ranges
// over the query user's cluster neighborhood in the candidate index
// instead of the exact candidate universe. No peer cache — an approx
// peer set must never be served to a later exact query — and hence no
// fence; the similarity snapshot alone decides the scores. Only
// reachable when Config.CandidateIndex is set (query normalization
// rejects Approx otherwise).
func (s *System) recommenderApprox() (*cf.Recommender, error) {
	sim, err := s.similarity()
	if err != nil {
		return nil, err
	}
	return &cf.Recommender{
		Store:           s.ratings,
		Sim:             sim,
		Delta:           s.cfg.Delta,
		RequirePositive: true,
		Candidates:      s.candIdx.Approx,
	}, nil
}

// workers resolves the effective pool size for parallel paths.
func (s *System) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PrecomputeSimilarity materializes the full pairwise similarity matrix
// for every rated user with a sharded worker pool — the parallel
// replacement for letting the first queries populate the cache pair by
// pair. It returns the number of pairs computed. Safe to call
// concurrently with queries; a cancelled context keeps the (valid)
// partial cache and returns ctx.Err().
func (s *System) PrecomputeSimilarity(ctx context.Context) (pairs int, err error) {
	c, err := s.similarity()
	if err != nil {
		return 0, err
	}
	return c.WarmAll(ctx, s.ratings.Users(), s.workers())
}

func (s *System) aggregator() group.Aggregator {
	a, err := group.ParseAggregator(s.cfg.Aggregation)
	if err != nil {
		return group.Average{} // unreachable: Config validated at New
	}
	return a
}

// ---------------------------------------------------------------------------
// queries

// SimilarityBetween evaluates the configured measure for two users;
// ok=false means undefined.
func (s *System) SimilarityBetween(a, b string) (sim float64, ok bool, err error) {
	m, err := s.similarity()
	if err != nil {
		return 0, false, err
	}
	sim, ok = m.Similarity(model.UserID(a), model.UserID(b))
	return sim, ok, nil
}

// knownUser reports whether the system has ever seen the user: at
// least one rating or a registered profile.
func (s *System) knownUser(u model.UserID) bool {
	return s.ratings.NumRatedBy(u) > 0 || s.profiles.Has(u)
}

// KnownUser reports whether the system has ever seen the user (at
// least one rating or a registered profile) — the membership check a
// partition coordinator runs on each member's owning partition before
// fanning a group query out.
func (s *System) KnownUser(user string) bool {
	return s.knownUser(model.UserID(user))
}

// MemberRelevances computes one member's candidate relevance scores
// under the named scorer ("" uses the configured default) — exactly
// the per-member unit of work scoring.Assemble fans out, exposed so a
// partition coordinator can route each member's assembly to the
// partition that owns (and caches for) that user. approx follows the
// AssembleApprox contract: providers without an approx path answer
// through their exact one. Scores are bit-identical to the ones an
// unpartitioned Serve would assemble.
func (s *System) MemberRelevances(scorer, user string, approx bool) (map[model.ItemID]float64, error) {
	if scorer == "" {
		scorer = s.cfg.Scorer
	}
	prov, err := s.scorerProvider(scorer)
	if err != nil {
		return nil, err
	}
	if approx {
		if ap, ok := prov.(scoring.ApproxRelevancer); ok {
			return ap.RelevancesApprox(model.UserID(user))
		}
	}
	return prov.Relevances(model.UserID(user))
}

// Peers returns the user's peer set P_u (Def. 1), best-first. A user
// the system has never seen (no ratings, no profile) is reported as
// ErrUnknownPatient rather than as an empty peer set.
func (s *System) Peers(user string) ([]Peer, error) {
	if !s.knownUser(model.UserID(user)) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPatient, user)
	}
	rec, err := s.recommender()
	if err != nil {
		return nil, err
	}
	peers, err := rec.Peers(model.UserID(user))
	if err != nil {
		return nil, err
	}
	out := make([]Peer, len(peers))
	for k, p := range peers {
		out[k] = Peer{User: string(p.User), Similarity: p.Sim}
	}
	return out, nil
}

// Recommend returns the user's personal top-k list A_u (§III.A). A
// user the system has never seen is reported as ErrUnknownPatient.
func (s *System) Recommend(user string, k int) ([]Recommendation, error) {
	if !s.knownUser(model.UserID(user)) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPatient, user)
	}
	rec, err := s.recommender()
	if err != nil {
		return nil, err
	}
	items, err := rec.Recommend(model.UserID(user), k)
	if err != nil {
		return nil, err
	}
	return toRecs(items), nil
}

func toRecs(items []model.ScoredItem) []Recommendation {
	out := make([]Recommendation, len(items))
	for k, it := range items {
		out[k] = Recommendation{Item: string(it.Item), Score: it.Score}
	}
	return out
}

// scorerProvider returns the relevance backend registered under name,
// building it on first use. Callers validate the name up front (query
// or config validation), so an unknown name here is a programming
// error surfaced as ErrBadQuery.
func (s *System) scorerProvider(name string) (scoring.Provider, error) {
	s.provMu.Lock()
	defer s.provMu.Unlock()
	if p, ok := s.providers[name]; ok {
		return p, nil
	}
	deps := scoring.Deps{
		Ratings:         s.ratings,
		Profiles:        s.profiles,
		Ontology:        s.ont,
		UserCF:          s.recommender,
		CandidateIndex:  s.cfg.CandidateIndex,
		CandidateK:      s.cfg.CandidateK,
		Delta:           s.cfg.Delta,
		MinOverlap:      s.cfg.MinOverlap,
		CacheTTL:        s.cfg.CacheTTL,
		CacheMaxEntries: s.cfg.CacheMaxEntries,
		CacheMaxCost:    s.cfg.CacheMaxCost,
	}
	if s.candIdx != nil {
		deps.UserCFApprox = s.recommenderApprox
	}
	p, err := scoring.New(name, deps)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	s.providers[name] = p
	return p, nil
}

// groupKey canonicalizes a group problem into its memo key. Member
// order matters (scores are aggregated in group order), so the key
// preserves it; the aggregator's canonical Name collapses aliases
// ("mean" and "avg" assemble identical inputs). Every field is
// length-prefixed, so the encoding is injective no matter what bytes
// appear in user IDs — a member named "a<sep>b" can never collide
// with the two-member group ["a","b"].
func groupKey(scorer string, g model.Group, aggr string, k int, approx bool) string {
	var b strings.Builder
	field := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	field(scorer)
	field(aggr)
	field(strconv.Itoa(k))
	// Approx inputs and exact inputs must never share a memo entry —
	// an approx assembly served warm to an exact query would break the
	// bit-identity contract.
	field(strconv.FormatBool(approx))
	for _, u := range g {
		field(string(u))
	}
	return b.String()
}

// groupProblem is the pipeline stage between a query and the fair
// solvers: resolve the scorer, assemble every member's candidate
// scores in parallel across at most workers goroutines
// (scoring.Assemble; batch serving passes 1 because the queries
// themselves already fan out across the Config.Workers bound — nested
// pools would oversubscribe it), fold them into group relevance under
// the query's aggregation, and build the personal top-k lists A_u.
// Assembled inputs are memoized per (scorer, members, aggregation, K)
// in the group-input cache; the eviction-sequence fence is captured
// before any upstream state is read, so a write racing the assembly
// keeps the result out of the memo (the caller still gets its answer
// — a read overlapping a write may see either side of it).
func (s *System) groupProblem(ctx context.Context, scorer string, g model.Group, aggr group.Aggregator, k, workers int, approx bool) (groupInput, error) {
	key := groupKey(scorer, g, aggr.Name(), k, approx)
	if in, _, ok := s.groupCache.Get(key); ok {
		return in, nil
	}
	startSeq := s.groupCache.Seq()
	prov, err := s.scorerProvider(scorer)
	if err != nil {
		return groupInput{}, err
	}
	assembleFn := scoring.AssembleContext
	if approx {
		assembleFn = scoring.AssembleApproxContext
	}
	cands, err := assembleFn(ctx, prov, g, workers)
	if err != nil {
		if errors.Is(err, scoring.ErrEmptyGroup) {
			return groupInput{}, ErrEmptyGroup
		}
		return groupInput{}, err
	}
	groupRel := make(map[model.ItemID]float64, len(cands.Items))
	for item, scores := range cands.Items {
		groupRel[item] = aggr.Aggregate(scores)
	}
	in := groupInput{
		group:    g,
		perUser:  cands.PerUser,
		groupRel: groupRel,
		lists:    core.ListsFromRelevances(cands.PerUser, k),
	}
	s.groupCache.PutChecked(key, in, []string{groupScopeRatings}, startSeq)
	return in, nil
}

// coreInput adapts a memoized group problem to the solvers' contract.
func (in groupInput) coreInput() core.Input {
	perUser := in.perUser
	return core.Input{
		Group:    in.group,
		Lists:    in.lists,
		GroupRel: in.groupRel,
		Rel: func(u model.UserID, i model.ItemID) (float64, bool) {
			sc, ok := perUser[u][i]
			return sc, ok
		},
	}
}

// toGroupResult shapes a solver outcome. The per-member evidence maps
// are built only when explain is set — they are |G|×K conversions the
// default serving path never reads.
func (s *System) toGroupResult(in core.Input, res core.Result, explain bool) *GroupResult {
	out := &GroupResult{
		Items:        make([]Recommendation, len(res.Items)),
		Fairness:     res.Fairness,
		Value:        res.Value,
		Combinations: res.Combinations,
	}
	for k, item := range res.Items {
		out.Items[k] = Recommendation{Item: string(item), Score: in.GroupRel[item]}
	}
	if explain {
		out.PerMember = make(map[string][]Recommendation, len(in.Group))
		for u, list := range in.Lists {
			out.PerMember[string(u)] = toRecs(list)
		}
	}
	return out
}

// GroupTopZ returns the plain (fairness-agnostic) top-z group list —
// the §III.B baseline that Algorithm 1 improves on. z follows the
// shared query rule: 0 means DefaultZ, negative is ErrBadQuery.
func (s *System) GroupTopZ(users []string, z int) ([]Recommendation, error) {
	if z < 0 {
		return nil, fmt.Errorf("%w: z must be ≥ 0 (0 means default %d), got %d", ErrBadQuery, DefaultZ, z)
	}
	if z == 0 {
		z = DefaultZ
	}
	g, err := memberGroup(users)
	if err != nil {
		return nil, err
	}
	in, err := s.groupProblem(context.Background(), s.cfg.Scorer, g, s.aggregator(), s.cfg.K, s.workers(), false)
	if err != nil {
		return nil, err
	}
	return toRecs(core.SortedItems(in.groupRel)[:min(z, len(in.groupRel))]), nil
}

// ---------------------------------------------------------------------------
// introspection helpers for examples and tools

// RatingTriples exposes a snapshot of all rating triples (user, item,
// value) in deterministic order.
func (s *System) RatingTriples() []struct {
	User, Item string
	Value      float64
} {
	ts := s.ratings.Triples()
	out := make([]struct {
		User, Item string
		Value      float64
	}, len(ts))
	for k, t := range ts {
		out[k].User, out[k].Item, out[k].Value = string(t.User), string(t.Item), float64(t.Value)
	}
	return out
}

// ConceptName resolves an ontology code to its display name.
func (s *System) ConceptName(code string) (string, bool) {
	c, ok := s.ont.Concept(ontology.ConceptID(code))
	if !ok {
		return "", false
	}
	return c.Name, true
}

// ProblemDistance returns the ontology path length between two problem
// codes (§V.C).
func (s *System) ProblemDistance(a, b string) (int, error) {
	return s.ont.PathLength(ontology.ConceptID(a), ontology.ConceptID(b))
}

// SortedUsers lists every user with at least one rating.
func (s *System) SortedUsers() []string {
	us := s.ratings.Users()
	out := make([]string, len(us))
	for k, u := range us {
		out[k] = string(u)
	}
	sort.Strings(out)
	return out
}
