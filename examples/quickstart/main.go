// Quickstart: the smallest end-to-end use of the fairhealth API.
//
// A caregiver looks after two patients with opposite tastes; the
// fairness-aware selection guarantees each of them sees something from
// their own top list (Def. 3 of the paper), unlike the plain top-z.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"fairhealth"
)

func main() {
	sys, err := fairhealth.New(fairhealth.Config{
		Delta:       0.5,   // peer threshold δ (Def. 1)
		MinOverlap:  1,     // co-rated items needed for a similarity
		K:           3,     // personal top-k lists (fairness, Def. 3)
		Aggregation: "avg", // majority semantics (Def. 2)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Rating history: ann and ben are the caregiver's patients; cara
	// mirrors ann's taste, dan mirrors ben's.
	type r struct {
		user, doc string
		stars     float64
	}
	history := []r{
		// shared history that establishes who is similar to whom
		{"ann", "intro-nutrition", 5}, {"ann", "intro-oncology", 1},
		{"ben", "intro-nutrition", 1}, {"ben", "intro-oncology", 5},
		{"cara", "intro-nutrition", 5}, {"cara", "intro-oncology", 1},
		{"dan", "intro-nutrition", 1}, {"dan", "intro-oncology", 5},
		// the peers rated the new documents our patients haven't seen
		{"cara", "diet-guide", 5}, {"cara", "recipe-book", 4}, {"cara", "chemo-faq", 2},
		{"dan", "chemo-faq", 5}, {"dan", "radiation-faq", 4}, {"dan", "diet-guide", 1},
	}
	for _, h := range history {
		if err := sys.AddRating(h.user, h.doc, h.stars); err != nil {
			log.Fatal(err)
		}
	}

	group := []string{"ann", "ben"}

	// Plain group top-z (§III.B): optimizes average relevance only.
	plain, err := sys.GroupTopZ(group, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plain top-2 (no fairness):")
	for _, it := range plain {
		fmt.Printf("  %-14s group score %.2f\n", it.Item, it.Score)
	}

	// Fairness-aware top-z (Algorithm 1) — one typed GroupQuery against
	// the unified Serve path; Explain requests the per-member evidence.
	fair, err := sys.Serve(context.Background(), fairhealth.GroupQuery{
		Members: group,
		Z:       2,
		Explain: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfairness-aware top-2 (Algorithm 1): fairness=%.2f value=%.2f\n",
		fair.Fairness, fair.Value)
	for _, it := range fair.Items {
		fmt.Printf("  %-14s group score %.2f\n", it.Item, it.Score)
	}

	fmt.Println("\neach member's personal top list A_u:")
	for user, list := range fair.PerMember {
		fmt.Printf("  %s:", user)
		for _, it := range list {
			fmt.Printf(" %s(%.1f)", it.Item, it.Score)
		}
		fmt.Println()
	}
}
