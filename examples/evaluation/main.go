// Evaluation workbench: the accuracy instrumentation the paper's
// preliminary evaluation leaves for future work. On a synthetic
// clustered population it runs
//
//  1. a holdout accuracy evaluation of the paper's CF model
//     (RMSE / MAE / precision / recall / nDCG / coverage),
//  2. a δ threshold sweep — the Def. 1 knob trading peer-set size
//     against prediction coverage, and
//  3. the clustering speed-up of Ntoutsi et al. [17]: full-scan vs
//     cluster-restricted peer discovery, and
//  4. a mixed GroupQuery batch through the unified serving API —
//     per-query method, z, and aggregation in one ServeBatch call.
//
// Run: go run ./examples/evaluation
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"fairhealth"
	"fairhealth/internal/dataset"
	"fairhealth/internal/eval"
	"fairhealth/internal/metrics"
	"fairhealth/internal/model"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{
		Seed: 99, Users: 120, Items: 180, RatingsPerUser: 35, Clusters: 4, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic population: %d patients, %d documents, %d ratings (sparsity %.1f%%)\n\n",
		ds.Ratings.NumUsers(), ds.Ratings.NumItems(), ds.Ratings.Len(), 100*ds.Ratings.Sparsity())

	// ---- 1. holdout accuracy ------------------------------------------------
	rep, err := metrics.EvaluateHoldout(ds.Ratings, metrics.CFFactory(0.55, 3),
		metrics.HoldoutConfig{Seed: 1, K: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("holdout accuracy of the paper's CF model (δ=0.55):")
	fmt.Printf("  RMSE %.3f   MAE %.3f   pred.coverage %.3f\n", rep.RMSE, rep.MAE, rep.PredictionCoverage)
	fmt.Printf("  P@10 %.3f   R@10 %.3f   nDCG@10 %.3f   catalog coverage %.3f\n\n",
		rep.PrecisionAtK, rep.RecallAtK, rep.NDCGAtK, rep.CatalogCoverage)

	// ---- 2. δ sweep -----------------------------------------------------------
	fmt.Println("δ threshold sweep (Def. 1): bigger δ → fewer peers → better precision,")
	fmt.Println("worse coverage:")
	sweep, err := eval.RunDeltaSweep(ds.Ratings, []float64{0.5, 0.6, 0.7, 0.8, 0.9}, 3,
		metrics.HoldoutConfig{Seed: 1, K: 10}, 25)
	if err != nil {
		log.Fatal(err)
	}
	if err := eval.WriteDeltaSweep(os.Stdout, sweep); err != nil {
		log.Fatal(err)
	}

	// ---- 3. clustering ablation ------------------------------------------------
	fmt.Println("\npeer discovery: full scan vs user clustering ([17]):")
	rows, err := eval.RunClusteringAblation(ds.Ratings, []int{4, 8}, 0.55, 3,
		metrics.HoldoutConfig{Seed: 2, K: 10}, 20)
	if err != nil {
		log.Fatal(err)
	}
	if err := eval.WriteClusteringAblation(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncluster-restricted scans answer queries faster at near-identical RMSE")
	fmt.Println("on cluster-structured populations — the speed-up [17] reports.")

	// ---- 4. serving the population through the unified API ----------------------
	// The same ratings feed a System, and one ServeBatch call answers a
	// mixed workload — per-query method, z, and aggregation — the shape
	// a production caregiver service sees.
	sys, err := fairhealth.New(fairhealth.Config{Delta: 0.55, MinOverlap: 3, K: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range ds.Ratings.Triples() {
		if err := sys.AddRating(string(tr.User), string(tr.Item), float64(tr.Value)); err != nil {
			log.Fatal(err)
		}
	}
	toMembers := func(g model.Group) []string {
		out := make([]string, len(g))
		for i, u := range g {
			out[i] = string(u)
		}
		return out
	}
	queries := []fairhealth.GroupQuery{
		{Members: toMembers(ds.MixedGroup(3, 4)), Z: 6},
		{Members: toMembers(ds.MixedGroup(3, 4)), Z: 6, Aggregation: "min"},
		{Members: toMembers(ds.MixedGroup(5, 3)), Z: 4, Method: fairhealth.MethodBrute, BruteM: 12},
	}
	batch, err := sys.ServeBatch(context.Background(), queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmixed batch through the unified GroupQuery API:")
	for _, e := range batch {
		if e.Err != nil {
			log.Fatal(e.Err)
		}
		q := queries[e.Index]
		method := q.Method
		if method == "" {
			method = fairhealth.MethodGreedy
		}
		aggr := q.Aggregation
		if aggr == "" {
			aggr = "avg"
		}
		fmt.Printf("  query %d (%-6s z=%d aggr=%-3s): fairness %.2f, value %.2f\n",
			e.Index, method, q.Z, aggr, e.Result.Fairness, e.Result.Value)
	}
}
