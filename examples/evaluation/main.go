// Evaluation workbench: the accuracy instrumentation the paper's
// preliminary evaluation leaves for future work. On a synthetic
// clustered population it runs
//
//  1. a holdout accuracy evaluation of the paper's CF model
//     (RMSE / MAE / precision / recall / nDCG / coverage),
//  2. a δ threshold sweep — the Def. 1 knob trading peer-set size
//     against prediction coverage, and
//  3. the clustering speed-up of Ntoutsi et al. [17]: full-scan vs
//     cluster-restricted peer discovery.
//
// Run: go run ./examples/evaluation
package main

import (
	"fmt"
	"log"
	"os"

	"fairhealth/internal/dataset"
	"fairhealth/internal/eval"
	"fairhealth/internal/metrics"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{
		Seed: 99, Users: 120, Items: 180, RatingsPerUser: 35, Clusters: 4, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic population: %d patients, %d documents, %d ratings (sparsity %.1f%%)\n\n",
		ds.Ratings.NumUsers(), ds.Ratings.NumItems(), ds.Ratings.Len(), 100*ds.Ratings.Sparsity())

	// ---- 1. holdout accuracy ------------------------------------------------
	rep, err := metrics.EvaluateHoldout(ds.Ratings, metrics.CFFactory(0.55, 3),
		metrics.HoldoutConfig{Seed: 1, K: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("holdout accuracy of the paper's CF model (δ=0.55):")
	fmt.Printf("  RMSE %.3f   MAE %.3f   pred.coverage %.3f\n", rep.RMSE, rep.MAE, rep.PredictionCoverage)
	fmt.Printf("  P@10 %.3f   R@10 %.3f   nDCG@10 %.3f   catalog coverage %.3f\n\n",
		rep.PrecisionAtK, rep.RecallAtK, rep.NDCGAtK, rep.CatalogCoverage)

	// ---- 2. δ sweep -----------------------------------------------------------
	fmt.Println("δ threshold sweep (Def. 1): bigger δ → fewer peers → better precision,")
	fmt.Println("worse coverage:")
	sweep, err := eval.RunDeltaSweep(ds.Ratings, []float64{0.5, 0.6, 0.7, 0.8, 0.9}, 3,
		metrics.HoldoutConfig{Seed: 1, K: 10}, 25)
	if err != nil {
		log.Fatal(err)
	}
	if err := eval.WriteDeltaSweep(os.Stdout, sweep); err != nil {
		log.Fatal(err)
	}

	// ---- 3. clustering ablation ------------------------------------------------
	fmt.Println("\npeer discovery: full scan vs user clustering ([17]):")
	rows, err := eval.RunClusteringAblation(ds.Ratings, []int{4, 8}, 0.55, 3,
		metrics.HoldoutConfig{Seed: 2, K: 10}, 20)
	if err != nil {
		log.Fatal(err)
	}
	if err := eval.WriteClusteringAblation(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncluster-restricted scans answer queries faster at near-identical RMSE")
	fmt.Println("on cluster-structured populations — the speed-up [17] reports.")
}
