// Caregiver scenario: the paper's motivating use case at realistic
// scale. A synthetic hospital population rates health documents; a
// caregiver is responsible for a MIXED group of patients from
// different preference clusters (an adversarial case for fairness),
// and we compare:
//
//   - plain group top-z (§III.B) vs Algorithm 1 (fairness-aware)
//   - majority (avg) vs veto (min) aggregation semantics (Def. 2)
//   - per-member satisfaction: who gets at least one personal favourite
//
// Run: go run ./examples/caregiver
package main

import (
	"context"
	"fmt"
	"log"

	"fairhealth"
	"fairhealth/internal/dataset"
	"fairhealth/internal/model"
)

func main() {
	// A synthetic ward: 80 patients in 4 latent preference clusters.
	ds, err := dataset.Generate(dataset.Config{
		Seed: 42, Users: 80, Items: 120, RatingsPerUser: 30, Clusters: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := fairhealth.New(fairhealth.Config{
		Delta: 0.55, MinOverlap: 4, K: 8, Aggregation: "avg",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range ds.Ratings.Triples() {
		if err := sys.AddRating(string(tr.User), string(tr.Item), float64(tr.Value)); err != nil {
			log.Fatal(err)
		}
	}

	// The caregiver's group: one patient from each cluster, i.e.
	// four people who genuinely disagree.
	grp := ds.MixedGroup(7, 4)
	users := make([]string, len(grp))
	for k, u := range grp {
		users[k] = string(u)
	}
	fmt.Println("caregiver group (one patient per preference cluster):")
	for _, u := range users {
		fmt.Printf("  %s (cluster %d)\n", u, ds.ClusterOf[model.UserID(u)])
	}

	const z = 6

	// ---- plain top-z ------------------------------------------------------
	plain, err := sys.GroupTopZ(users, z)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Algorithm 1 -------------------------------------------------------
	fair, err := sys.Serve(context.Background(), fairhealth.GroupQuery{
		Members: users,
		Z:       z,
		Explain: true, // per-member lists feed the satisfaction table below
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %-22s\n", "plain top-z (no fairness)", "Algorithm 1 (fair)")
	for i := 0; i < z; i++ {
		var left, right string
		if i < len(plain) {
			left = fmt.Sprintf("%s %.2f", plain[i].Item, plain[i].Score)
		}
		if i < len(fair.Items) {
			right = fmt.Sprintf("%s %.2f", fair.Items[i].Item, fair.Items[i].Score)
		}
		fmt.Printf("%-28s %-22s\n", left, right)
	}

	// ---- who is satisfied? --------------------------------------------------
	satisfied := func(selection []string, personal []fairhealth.Recommendation) bool {
		inSel := map[string]bool{}
		for _, it := range selection {
			inSel[it] = true
		}
		for _, p := range personal {
			if inSel[p.Item] {
				return true
			}
		}
		return false
	}
	plainItems := make([]string, len(plain))
	for k, it := range plain {
		plainItems[k] = it.Item
	}
	fairItems := make([]string, len(fair.Items))
	for k, it := range fair.Items {
		fairItems[k] = it.Item
	}
	fmt.Println("\nper-member satisfaction (≥1 item from their personal top-k):")
	plainSat, fairSat := 0, 0
	for user, personal := range fair.PerMember {
		p := satisfied(plainItems, personal)
		f := satisfied(fairItems, personal)
		if p {
			plainSat++
		}
		if f {
			fairSat++
		}
		fmt.Printf("  %-12s plain: %-5v fair: %v\n", user, p, f)
	}
	fmt.Printf("\nfairness — plain: %.2f   Algorithm 1: %.2f (value %.2f)\n",
		float64(plainSat)/float64(len(fair.PerMember)),
		fair.Fairness, fair.Value)

	// ---- veto semantics ------------------------------------------------------
	// Aggregation is a per-query knob of the unified API, so the veto
	// comparison reuses the SAME system (and its warm caches) instead
	// of rebuilding one with a different Config.
	veto, err := sys.Serve(context.Background(), fairhealth.GroupQuery{
		Members:     users,
		Z:           z,
		Aggregation: "min",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nveto (min) aggregation — 'strong user preferences act as a veto':")
	for _, it := range veto.Items {
		fmt.Printf("  %-12s least-satisfied member scores it %.2f\n", it.Item, it.Score)
	}
	fmt.Printf("veto fairness %.2f, value %.2f\n", veto.Fairness, veto.Value)
}
