// MapReduce pipeline demo: the paper's §IV implementation run end to
// end on a larger synthetic dataset, with per-job counters (Fig. 2's
// three jobs plus the means job and the top-k job of [5]) and a
// cross-check against the direct in-memory path.
//
// Run: go run ./examples/mrpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"fairhealth"
	"fairhealth/internal/dataset"
	"fairhealth/internal/mrpipeline"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{
		Seed: 7, Users: 200, Items: 400, RatingsPerUser: 40, Clusters: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	triples := ds.Ratings.Triples()
	grp := ds.SampleGroup(3, 3, 1) // three patients from cluster 1
	fmt.Printf("dataset: %d users, %d items, %d ratings; group %v\n\n",
		ds.Ratings.NumUsers(), ds.Ratings.NumItems(), len(triples), grp)

	cfg := mrpipeline.Config{
		Group: grp, Delta: 0.55, MinOverlap: 4,
		K: 8, Z: 6, Aggregator: "avg",
	}

	start := time.Now()
	out, err := mrpipeline.Run(context.Background(), triples, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("pipeline finished in %v\n", elapsed.Round(time.Millisecond))
	fmt.Println("job counters (Fig. 2):")
	for _, job := range []string{"means", "job1", "job2", "job3", "topk"} {
		st := out.Stats[job]
		fmt.Printf("  %-5s  map in/out %7d/%7d  shuffle %7d  reduce keys %6d  outputs %6d\n",
			job, st.MapInputs, st.MapOutputs, st.ShufflePairs, st.ReduceKeys, st.ReduceOutputs)
	}
	fmt.Printf("\ncandidates (unrated by every member): %d\n", len(out.Candidates))
	fmt.Printf("defined group scores:                 %d\n", len(out.GroupRel))
	for _, u := range grp {
		fmt.Printf("peers of %s above δ: %d\n", u, len(out.Similarities[u]))
	}

	fmt.Printf("\nMapReduce top-%d by group relevance ([5]):\n", cfg.Z)
	for i, it := range out.TopK {
		fmt.Printf("%2d. %-10s %.3f\n", i+1, it.Item, it.Score)
	}
	fmt.Printf("\nAlgorithm 1 (centralized) — fairness %.2f, value %.2f:\n",
		out.Fair.Fairness, out.Fair.Value)
	for i, item := range out.Fair.Items {
		fmt.Printf("%2d. %-10s %.3f\n", i+1, item, out.GroupRel[item])
	}

	// ---- cross-check against the direct in-memory path ----------------------
	sys, err := fairhealth.New(fairhealth.Config{
		Delta: cfg.Delta, MinOverlap: cfg.MinOverlap, K: cfg.K, Aggregation: cfg.Aggregator,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range triples {
		if err := sys.AddRating(string(tr.User), string(tr.Item), float64(tr.Value)); err != nil {
			log.Fatal(err)
		}
	}
	users := make([]string, len(grp))
	for k, u := range grp {
		users[k] = string(u)
	}
	start = time.Now()
	direct, err := sys.Serve(context.Background(), fairhealth.GroupQuery{
		Members: users,
		Z:       cfg.Z,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirect in-memory path finished in %v\n", time.Since(start).Round(time.Millisecond))
	if math.Abs(direct.Value-out.Fair.Value) < 1e-9 && direct.Fairness == out.Fair.Fairness {
		fmt.Println("cross-check OK: MapReduce and direct paths agree exactly.")
	} else {
		fmt.Printf("cross-check MISMATCH: direct value %.6f fairness %.2f vs MR value %.6f fairness %.2f\n",
			direct.Value, direct.Fairness, out.Fair.Value, out.Fair.Fairness)
	}
}
