// Similarity walkthrough: the three user-similarity measures of §V
// evaluated side by side on the paper's Table I patients, plus a
// hybrid of all three.
//
//   - RS: Pearson correlation over co-rated documents (Eq. 2)
//   - CS: cosine over TF-IDF vectors of rendered profiles (Def. 4 + Eq. 3)
//   - SS: ontology path similarity of coded problems, harmonic mean (Eq. 4)
//
// Run: go run ./examples/similarity
package main

import (
	"context"
	"fmt"
	"log"

	"fairhealth"
	"fairhealth/internal/model"
	"fairhealth/internal/phr"
	"fairhealth/internal/ratings"
	"fairhealth/internal/simfn"
	"fairhealth/internal/snomed"
)

func main() {
	ont := snomed.Load()
	profiles := phr.NewStore(ont)
	for _, p := range phr.TableIPatients() {
		if err := profiles.Put(p); err != nil {
			log.Fatal(err)
		}
	}

	// Give the three patients a plausible rating history: patients 1
	// and 3 (both bronchitis) like the same respiratory-care documents,
	// patient 2 (chest pain) prefers cardiac content.
	history := []struct {
		u, d string
		v    float64
	}{
		{"patient1", "breathing-exercises", 5}, {"patient1", "cough-remedies", 4}, {"patient1", "heart-health", 2},
		{"patient3", "breathing-exercises", 5}, {"patient3", "cough-remedies", 5}, {"patient3", "heart-health", 1},
		{"patient2", "breathing-exercises", 2}, {"patient2", "cough-remedies", 1}, {"patient2", "heart-health", 5},
		// documents only the peers have seen, so Eq. 1 has something
		// to predict in the group demo at the end
		{"patient3", "steam-inhalation", 4}, {"patient2", "cardio-diet", 5},
	}
	store := ratings.New()
	for _, r := range history {
		if err := store.Add(model.UserID(r.u), model.ItemID(r.d), model.Rating(r.v)); err != nil {
			log.Fatal(err)
		}
	}

	rs := simfn.Normalized{S: simfn.Pearson{Store: store, MinOverlap: 2}}
	cs, err := simfn.BuildProfileCosine(profiles, ont, nil)
	if err != nil {
		log.Fatal(err)
	}
	ss := simfn.Semantic{Ont: ont, Problems: profiles.Problems}
	hybrid := simfn.Weighted{Components: []simfn.Component{
		{S: rs, Weight: 1}, {S: cs, Weight: 1}, {S: ss, Weight: 1},
	}}

	measures := []struct {
		name string
		sim  simfn.UserSimilarity
	}{
		{"RS ratings (Eq. 2, normalized)", rs},
		{"CS profile TF-IDF (Eq. 3)", cs},
		{"SS semantic (Eq. 4)", ss},
		{"hybrid (equal weights)", hybrid},
	}
	pairs := [][2]model.UserID{
		{"patient1", "patient2"},
		{"patient1", "patient3"},
		{"patient2", "patient3"},
	}

	fmt.Println("Table I patients:")
	for _, p := range phr.TableIPatients() {
		var names []string
		for _, c := range p.Problems {
			concept, _ := ont.Concept(c)
			names = append(names, concept.Name)
		}
		fmt.Printf("  %-9s %2d %-7s %v  meds: %v\n", p.ID, p.Age, p.Gender, names, p.Medications)
	}

	fmt.Printf("\n%-34s", "measure")
	for _, pr := range pairs {
		fmt.Printf(" %9s", fmt.Sprintf("%s,%s", pr[0][len(pr[0])-1:], pr[1][len(pr[1])-1:]))
	}
	fmt.Println()
	for _, m := range measures {
		fmt.Printf("%-34s", m.name)
		for _, pr := range pairs {
			if s, ok := m.sim.Similarity(pr[0], pr[1]); ok {
				fmt.Printf(" %9.4f", s)
			} else {
				fmt.Printf(" %9s", "undef")
			}
		}
		fmt.Println()
	}

	d, err := ont.PathLength(snomed.AcuteBronchitis, snomed.ChestPain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nontology check: dist(acute bronchitis, chest pain) = %d (paper: 5)\n", d)
	d, err = ont.PathLength(snomed.Tracheobronchitis, snomed.AcuteBronchitis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ontology check: dist(tracheobronchitis, acute bronchitis) = %d (paper: 2)\n", d)
	fmt.Println("\nevery measure ranks (patient1, patient3) above (patient1, patient2),")
	fmt.Println("matching the paper's §V.C conclusion.")

	// ---- the measures at work: one GroupQuery over a hybrid system --------
	// The same profiles and ratings feed a System configured with the
	// hybrid measure, and the unified API serves a fair group
	// recommendation for a caregiver responsible for patients 1 and 2
	// (patient 3 acts as the outside peer whose ratings drive Eq. 1).
	// δ is far below the paper's operating point because the toy
	// corpus has three patients: hybrid scores against the one
	// genuinely dissimilar patient sit under 0.1 (see the table).
	sys, err := fairhealth.New(fairhealth.Config{
		Similarity: fairhealth.SimilarityHybrid,
		Delta:      0.05, MinOverlap: 2, K: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range phr.TableIPatients() {
		problems := make([]string, len(p.Problems))
		for i, c := range p.Problems {
			problems[i] = string(c)
		}
		if err := sys.AddPatient(fairhealth.Patient{
			ID: string(p.ID), Age: p.Age, Gender: string(p.Gender), Problems: problems,
		}); err != nil {
			log.Fatal(err)
		}
	}
	for _, r := range history {
		if err := sys.AddRating(r.u, r.d, r.v); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sys.Serve(context.Background(), fairhealth.GroupQuery{
		Members: []string{"patient1", "patient2"},
		Z:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfair top-2 for patients 1+2 under the hybrid measure (fairness %.2f):\n", res.Fairness)
	for i, it := range res.Items {
		fmt.Printf("%2d. %-18s group score %.3f\n", i+1, it.Item, it.Score)
	}
}
