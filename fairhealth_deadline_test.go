package fairhealth

// Regression suite for context-deadline propagation through the
// serving fan-out: member assembly on an artificially slow scorer
// must return the context error when the query deadline passes, not
// block the merge until every member finishes.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fairhealth/internal/model"
	"fairhealth/internal/scoring"
)

// parkedProvider blocks every Relevances call until the current gate
// closes (the gate is re-made per test run so -count=N reruns work).
type parkedProvider struct{}

var (
	parkedMu   sync.Mutex
	parkedGate chan struct{}
)

func parkedPark() {
	parkedMu.Lock()
	gate := parkedGate
	parkedMu.Unlock()
	if gate != nil {
		<-gate
	}
}

func (p *parkedProvider) Name() string { return "parked-test" }

func (p *parkedProvider) Relevances(u model.UserID) (map[model.ItemID]float64, error) {
	parkedPark()
	return map[model.ItemID]float64{"doc0001": 1}, nil
}

func (p *parkedProvider) Relevance(u model.UserID, i model.ItemID) (float64, bool, error) {
	return 0, false, nil
}

func (p *parkedProvider) InvalidateUsers(users []model.UserID) {}
func (p *parkedProvider) InvalidateAll()                       {}
func (p *parkedProvider) Close()                               {}

func init() {
	scoring.Register("parked-test", func(d scoring.Deps) scoring.Provider {
		return &parkedProvider{}
	})
}

func TestServeHonorsDeadlineDuringAssembly(t *testing.T) {
	sys, groups := scorerSystem(t)
	gate := make(chan struct{})
	parkedMu.Lock()
	parkedGate = gate
	parkedMu.Unlock()
	defer close(gate) // release background stragglers

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sys.Serve(ctx, GroupQuery{Members: groups[0], Z: 4, Scorer: "parked-test"})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("serve past deadline: %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("serve blocked %v on a parked scorer instead of honoring the deadline", elapsed)
	}

	// The system still serves normally afterwards on a healthy scorer.
	if _, err := sys.Serve(context.Background(), GroupQuery{Members: groups[0], Z: 4}); err != nil {
		t.Fatalf("serve after abandoned assembly: %v", err)
	}
}
