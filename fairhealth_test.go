package fairhealth

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"fairhealth/internal/dataset"
)

// seedCommunity loads a small deterministic world: two like-minded
// members (g1, g2), an agreeing peer p1, a disagreeing peer p2, and
// candidate documents dA/dB rated only by the peers.
func seedCommunity(t *testing.T, sys *System) {
	t.Helper()
	ratings := []struct {
		u, i string
		v    float64
	}{
		{"g1", "q1", 5}, {"g1", "q2", 1},
		{"g2", "q1", 5}, {"g2", "q2", 1},
		{"p1", "q1", 5}, {"p1", "q2", 1}, {"p1", "dA", 5}, {"p1", "dB", 2},
		{"p2", "q1", 1}, {"p2", "q2", 5}, {"p2", "dA", 1}, {"p2", "dB", 4},
	}
	for _, r := range ratings {
		if err := sys.AddRating(r.u, r.i, r.v); err != nil {
			t.Fatalf("AddRating(%s,%s): %v", r.u, r.i, err)
		}
	}
}

func newRatingsSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{MinOverlap: 1, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigDefaults(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.Delta != 0.5 || cfg.MinOverlap != 2 || cfg.K != 10 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Similarity != SimilarityRatings || cfg.Aggregation != "avg" {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Delta: 1.5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad delta: %v", err)
	}
	if _, err := New(Config{Similarity: "telepathy"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad similarity: %v", err)
	}
	if _, err := New(Config{Aggregation: "sum"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad aggregation: %v", err)
	}
}

func TestAddRatingValidation(t *testing.T) {
	sys := newRatingsSystem(t)
	if err := sys.AddRating("u", "d", 9); err == nil {
		t.Error("out-of-range rating accepted")
	}
	if err := sys.AddRating("", "d", 3); err == nil {
		t.Error("empty user accepted")
	}
}

func TestStatsAndTriples(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	st := sys.Stats()
	if st.Users != 4 || st.Items != 4 || st.Ratings != 12 {
		t.Errorf("stats = %+v", st)
	}
	ts := sys.RatingTriples()
	if len(ts) != 12 {
		t.Errorf("triples = %d", len(ts))
	}
	if ts[0].User != "g1" {
		t.Errorf("triples not ordered: %+v", ts[0])
	}
	if got := sys.SortedUsers(); len(got) != 4 || got[0] != "g1" {
		t.Errorf("SortedUsers = %v", got)
	}
}

func TestLoadRatingsCSV(t *testing.T) {
	sys := newRatingsSystem(t)
	n, err := sys.LoadRatingsCSV(strings.NewReader("u1,d1,4\nu2,d1,5\n"))
	if err != nil || n != 2 {
		t.Fatalf("LoadRatingsCSV = %d, %v", n, err)
	}
	if sys.Stats().Ratings != 2 {
		t.Error("ratings not loaded")
	}
	if _, err := sys.LoadRatingsCSV(strings.NewReader("u1,d1\n")); err == nil {
		t.Error("malformed csv accepted")
	}
}

func TestPeersAndSimilarity(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	peers, err := sys.Peers("g1")
	if err != nil {
		t.Fatal(err)
	}
	// p1 and g2 correlate perfectly with g1; p2 anti-correlates
	found := map[string]bool{}
	for _, p := range peers {
		found[p.User] = true
		if p.User == "p2" {
			t.Error("anti-correlated p2 in peers")
		}
	}
	if !found["p1"] || !found["g2"] {
		t.Errorf("peers = %+v, want p1 and g2", peers)
	}
	sim, ok, err := sys.SimilarityBetween("g1", "p1")
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	// hand-computed Eq. 2: co-rated {q1,q2}; g1 centered ±2 (μ=3), p1
	// centered +1.75/−2.25 (μ=3.25) → r = 8/√65; normalized (r+1)/2.
	want := (8/math.Sqrt(65) + 1) / 2
	if math.Abs(sim-want) > 1e-9 {
		t.Errorf("sim(g1,p1) = %v, want %v", sim, want)
	}
}

func TestRecommendPersonal(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	recs, err := sys.Recommend("g1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Item != "dA" {
		t.Errorf("Recommend = %+v, want dA first (peer p1 loves it)", recs)
	}
	if recs[0].Score != 5 {
		t.Errorf("score = %v, want 5 (only peer p1 rated dA among peers)", recs[0].Score)
	}
}

func TestGroupRecommend(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	res, err := sys.GroupRecommend([]string{"g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("items = %+v", res.Items)
	}
	if res.Fairness != 1 {
		t.Errorf("fairness = %v, want 1 (z ≥ |G|, Prop. 1)", res.Fairness)
	}
	if res.Value <= 0 {
		t.Errorf("value = %v", res.Value)
	}
	if len(res.PerMember["g1"]) == 0 || len(res.PerMember["g2"]) == 0 {
		t.Error("PerMember lists missing")
	}
	// duplicate member IDs collapse
	res2, err := sys.GroupRecommend([]string{"g1", "g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.PerMember) != 2 {
		t.Errorf("dedup failed: %v", res2.PerMember)
	}
}

func TestGroupRecommendErrors(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	if _, err := sys.GroupRecommend(nil, 3); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("empty group: %v", err)
	}
	// z=0 means DefaultZ under the shared validator; negative z is the
	// invalid case and reports ErrBadQuery.
	if res, err := sys.GroupRecommend([]string{"g1"}, 0); err != nil || len(res.Items) == 0 {
		t.Errorf("z=0 should default to %d: res=%+v err=%v", DefaultZ, res, err)
	}
	if _, err := sys.GroupRecommend([]string{"g1"}, -1); !errors.Is(err, ErrBadQuery) {
		t.Errorf("z=-1 error = %v, want ErrBadQuery", err)
	}
	if _, err := sys.GroupRecommend([]string{"ghost-user"}, 3); !errors.Is(err, ErrUnknownPatient) {
		t.Errorf("unknown member error = %v, want ErrUnknownPatient", err)
	}
}

func TestGroupRecommendBruteForceAgreesOnFairness(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	greedy, err := sys.GroupRecommend([]string{"g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := sys.GroupRecommendBruteForce([]string{"g1", "g2"}, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if brute.Fairness != greedy.Fairness {
		t.Errorf("fairness differs: brute %v vs greedy %v (paper §VI: identical)", brute.Fairness, greedy.Fairness)
	}
	if brute.Value+1e-9 < greedy.Value {
		t.Errorf("brute force value %v below greedy %v", brute.Value, greedy.Value)
	}
	if brute.Combinations == 0 {
		t.Error("brute force reported no enumerations")
	}
}

func TestGroupTopZIgnoresFairness(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	plain, err := sys.GroupTopZ([]string{"g1", "g2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0].Item != "dA" {
		t.Errorf("GroupTopZ = %+v, want dA", plain)
	}
}

func TestGroupRecommendMapReduceMatchesDirect(t *testing.T) {
	sys := newRatingsSystem(t)
	seedCommunity(t, sys)
	direct, err := sys.GroupRecommend([]string{"g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := sys.GroupRecommendMapReduce(context.Background(), []string{"g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Fairness != direct.Fairness {
		t.Errorf("fairness: MR %v vs direct %v", mr.Fairness, direct.Fairness)
	}
	if math.Abs(mr.Value-direct.Value) > 1e-9 {
		t.Errorf("value: MR %v vs direct %v", mr.Value, direct.Value)
	}
	if len(mr.Items) != len(direct.Items) {
		t.Fatalf("items: MR %v vs direct %v", mr.Items, direct.Items)
	}
	for k := range mr.Items {
		if mr.Items[k].Item != direct.Items[k].Item {
			t.Errorf("item %d: MR %v vs direct %v", k, mr.Items[k], direct.Items[k])
		}
	}
}

func TestPatientLifecycle(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := Patient{
		ID: "alice", Age: 40, Gender: "female",
		Problems:    []string{"10509002"}, // acute bronchitis
		Medications: []string{"Ramipril 10 MG Oral Capsule"},
	}
	if err := sys.AddPatient(p); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Patient("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Age != 40 || got.Problems[0] != "10509002" {
		t.Errorf("patient = %+v", got)
	}
	// update in place
	p.Age = 41
	if err := sys.AddPatient(p); err != nil {
		t.Fatal(err)
	}
	got, _ = sys.Patient("alice")
	if got.Age != 41 {
		t.Errorf("age after update = %d", got.Age)
	}
	if _, err := sys.Patient("ghost"); !errors.Is(err, ErrUnknownPatient) {
		t.Errorf("unknown patient: %v", err)
	}
	if ids := sys.Patients(); len(ids) != 1 || ids[0] != "alice" {
		t.Errorf("Patients = %v", ids)
	}
	// invalid problem code rejected by the ontology-backed store
	if err := sys.AddPatient(Patient{ID: "bob", Problems: []string{"not-a-code"}}); err == nil {
		t.Error("invalid problem code accepted")
	}
}

func TestSemanticSimilaritySystem(t *testing.T) {
	sys, err := New(Config{Similarity: SimilaritySemantic, Delta: 0.2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Table I patients
	for _, p := range []Patient{
		{ID: "patient1", Age: 40, Gender: "female", Problems: []string{"10509002"}},         // acute bronchitis
		{ID: "patient2", Age: 53, Gender: "male", Problems: []string{"29857009"}},           // chest pain
		{ID: "patient3", Age: 34, Gender: "male", Problems: []string{"7001023", "7004001"}}, // tracheobronchitis + broken arm
	} {
		if err := sys.AddPatient(p); err != nil {
			t.Fatal(err)
		}
	}
	s13, ok13, err := sys.SimilarityBetween("patient1", "patient3")
	if err != nil || !ok13 {
		t.Fatal(err, ok13)
	}
	s12, ok12, err := sys.SimilarityBetween("patient1", "patient2")
	if err != nil || !ok12 {
		t.Fatal(err, ok12)
	}
	if s13 <= s12 {
		t.Errorf("semantic sim(P1,P3)=%v must exceed sim(P1,P2)=%v (Table I)", s13, s12)
	}
}

func TestProfileSimilarityRebuildsAfterUpdate(t *testing.T) {
	sys, err := New(Config{Similarity: SimilarityProfile, Delta: 0.1, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	add := func(id string, problems ...string) {
		t.Helper()
		if err := sys.AddPatient(Patient{ID: id, Problems: problems}); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "10509002") // acute bronchitis
	add("b", "29857009") // chest pain
	add("c", "44054006") // diabetes type 2 (needed so idf ≠ 0 everywhere)
	s1, ok, err := sys.SimilarityBetween("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	_ = ok
	// now make b's profile identical to a's — similarity must jump to 1
	if err := sys.AddPatient(Patient{ID: "b", Problems: []string{"10509002"}}); err != nil {
		t.Fatal(err)
	}
	s2, ok2, err := sys.SimilarityBetween("a", "b")
	if err != nil || !ok2 {
		t.Fatal(err, ok2)
	}
	if math.Abs(s2-1) > 1e-9 {
		t.Errorf("identical profiles similarity = %v, want 1 (stale cache?)", s2)
	}
	if s2 <= s1 {
		t.Errorf("similarity should increase after matching profiles: %v → %v", s1, s2)
	}
}

func TestConceptHelpers(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	name, ok := sys.ConceptName("10509002")
	if !ok || name != "Acute bronchitis" {
		t.Errorf("ConceptName = %q,%v", name, ok)
	}
	if _, ok := sys.ConceptName("zzz"); ok {
		t.Error("unknown concept resolved")
	}
	d, err := sys.ProblemDistance("10509002", "29857009")
	if err != nil || d != 5 {
		t.Errorf("ProblemDistance = %d,%v want 5 (paper §V.C)", d, err)
	}
}

// TestEndToEndOnSyntheticDataset wires the facade to the dataset
// generator the way the examples do, and sanity-checks the full flow.
func TestEndToEndOnSyntheticDataset(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{Seed: 21, Users: 40, Items: 60, RatingsPerUser: 25, Clusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{MinOverlap: 3, K: 8, Delta: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Ratings.Triples() {
		if err := sys.AddRating(string(tr.User), string(tr.Item), float64(tr.Value)); err != nil {
			t.Fatal(err)
		}
	}
	g := ds.MixedGroup(3, 3)
	users := make([]string, len(g))
	for k, u := range g {
		users[k] = string(u)
	}
	res, err := sys.GroupRecommend(users, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("no recommendations on synthetic dataset")
	}
	if res.Fairness != 1 {
		t.Errorf("fairness = %v, want 1 (z=6 ≥ |G|=3)", res.Fairness)
	}
	for _, it := range res.Items {
		if it.Score < 1 || it.Score > 5 {
			t.Errorf("group score %v outside rating range", it.Score)
		}
	}
}

func TestSearchDocuments(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("d1", "Chemotherapy nausea tips", "nausea ginger relief"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("d2", "Knee rehabilitation", "knee exercises strength"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("d1", "dup", ""); err == nil {
		t.Error("duplicate document accepted")
	}
	hits := sys.SearchDocuments("nausea", 5)
	if len(hits) != 1 || hits[0].Item != "d1" {
		t.Fatalf("hits = %+v", hits)
	}
	if title, ok := sys.DocumentTitle("d2"); !ok || title != "Knee rehabilitation" {
		t.Errorf("title = %q,%v", title, ok)
	}
	if sys.Stats().Documents != 2 {
		t.Errorf("Documents = %d", sys.Stats().Documents)
	}
	if hits := sys.SearchDocuments("zebra", 5); len(hits) != 0 {
		t.Errorf("no-match hits = %v", hits)
	}
}

func TestPersistentSystemSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sys, err := NewPersistent(Config{MinOverlap: 1, K: 5}, dir)
	if err != nil {
		t.Fatal(err)
	}
	seedCommunity(t, sys)
	if err := sys.AddPatient(Patient{ID: "g1", Age: 50, Gender: "female", Problems: []string{"10509002"}}); err != nil {
		t.Fatal(err)
	}
	want, err := sys.GroupRecommend([]string{"g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// reboot
	sys2, err := NewPersistent(Config{MinOverlap: 1, K: 5}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	st := sys2.Stats()
	if st.Ratings != 12 || st.Patients != 1 {
		t.Fatalf("restored stats = %+v", st)
	}
	p, err := sys2.Patient("g1")
	if err != nil || p.Age != 50 {
		t.Fatalf("restored patient = %+v, %v", p, err)
	}
	got, err := sys2.GroupRecommend([]string{"g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Fairness != want.Fairness {
		t.Errorf("recommendations differ after restart: %+v vs %+v", got, want)
	}
}

func TestPersistentRemoveRatingAndCompact(t *testing.T) {
	dir := t.TempDir()
	sys, err := NewPersistent(Config{MinOverlap: 1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRating("u1", "d1", 4); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRating("u1", "d2", 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveRating("u1", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveRating("u1", "zz"); err == nil {
		t.Error("removing unknown rating succeeded")
	}
	n, err := sys.CompactLog()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("compacted records = %d, want 1 (one live rating)", n)
	}
	// appends still work post-compaction
	if err := sys.AddRating("u2", "d9", 3); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	sys2, err := NewPersistent(Config{MinOverlap: 1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	st := sys2.Stats()
	if st.Ratings != 2 {
		t.Errorf("ratings after reboot = %d, want 2", st.Ratings)
	}
}

func TestInMemorySystemCompactErrors(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CompactLog(); err == nil {
		t.Error("CompactLog on in-memory system succeeded")
	}
	if err := sys.Close(); err != nil {
		t.Errorf("Close on in-memory system: %v", err)
	}
}

func TestConsensusAggregationEndToEnd(t *testing.T) {
	sys, err := New(Config{MinOverlap: 1, K: 5, Aggregation: "consensus"})
	if err != nil {
		t.Fatal(err)
	}
	seedCommunity(t, sys)
	res, err := sys.GroupRecommend([]string{"g1", "g2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 || res.Fairness != 1 {
		t.Errorf("consensus result = %+v", res)
	}
	// MapReduce path must reject non-paper aggregators
	if _, err := sys.GroupRecommendMapReduce(context.Background(), []string{"g1", "g2"}, 2); !errors.Is(err, ErrBadQuery) {
		t.Errorf("MR with consensus: %v, want ErrBadQuery", err)
	}
	// ...but a per-query aggregation override can use the paper's
	// semantics on the same system without rebuilding it.
	mr, err := sys.Serve(context.Background(), GroupQuery{
		Members: []string{"g1", "g2"}, Z: 2, Method: MethodMapReduce, Aggregation: "avg",
	})
	if err != nil {
		t.Fatalf("MR with per-query avg: %v", err)
	}
	if len(mr.Items) != 2 {
		t.Errorf("MR per-query avg items = %+v", mr.Items)
	}
}

func TestProfileCorrespondencesEndToEnd(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Patient{
		{ID: "p1", Problems: []string{"10509002"}},
		{ID: "p3", Problems: []string{"7001023", "7004001"}},
	} {
		if err := sys.AddPatient(p); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := sys.ProfileCorrespondences("p1", "p3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Distance != 2 {
		t.Fatalf("correspondences = %+v", cs)
	}
	if cs[0].Explanation == "" || cs[0].CommonAncestor == "" {
		t.Errorf("incomplete correspondence: %+v", cs[0])
	}
	if _, err := sys.ProfileCorrespondences("p1", "ghost"); !errors.Is(err, ErrUnknownPatient) {
		t.Errorf("unknown patient: %v", err)
	}
}

func TestSearchPersonalizedEndToEnd(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPatient(Patient{ID: "p1", Problems: []string{"10509002"}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("resp", "Bronchitis care", "bronchitis recovery cough"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("gen", "General recovery", "recovery rest sleep"); err != nil {
		t.Fatal(err)
	}
	hits, err := sys.SearchPersonalized("p1", "recovery", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Item != "resp" {
		t.Errorf("personalized hits = %+v, want resp first", hits)
	}
	if _, err := sys.SearchPersonalized("ghost", "recovery", 5, 2); !errors.Is(err, ErrUnknownPatient) {
		t.Errorf("unknown patient: %v", err)
	}
}
