package fairhealth

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fairhealth/internal/dataset"
)

// batchSystem builds a System over a synthetic community large enough
// for several overlapping groups.
func batchSystem(t *testing.T, workers int) (*System, [][]string) {
	t.Helper()
	sys, err := New(Config{Delta: 0.55, MinOverlap: 4, K: 8, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{Seed: 7, Users: 40, Items: 80, RatingsPerUser: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Ratings.Triples() {
		if err := sys.AddRating(string(tr.User), string(tr.Item), float64(tr.Value)); err != nil {
			t.Fatal(err)
		}
	}
	users := sys.SortedUsers()
	// Overlapping groups: consecutive windows share two members each.
	var groups [][]string
	for g := 0; g+3 <= 12; g++ {
		groups = append(groups, []string{users[g], users[g+1], users[g+2]})
	}
	return sys, groups
}

func TestGroupRecommendBatchMatchesSingle(t *testing.T) {
	sys, groups := batchSystem(t, 4)
	batch, err := sys.GroupRecommendBatch(context.Background(), groups, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(groups) {
		t.Fatalf("batch returned %d entries, want %d", len(batch), len(groups))
	}
	for k, entry := range batch {
		if entry.Err != nil {
			t.Fatalf("group %d: unexpected error %v", k, entry.Err)
		}
		if !reflect.DeepEqual(entry.Group, groups[k]) {
			t.Errorf("group %d: echoed members %v, want %v", k, entry.Group, groups[k])
		}
		single, err := sys.GroupRecommend(groups[k], 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(entry.Result.Items, single.Items) {
			t.Errorf("group %d: batch items %v differ from single-shot %v", k, entry.Result.Items, single.Items)
		}
		if entry.Result.Fairness != single.Fairness {
			t.Errorf("group %d: batch fairness %v, single %v", k, entry.Result.Fairness, single.Fairness)
		}
	}
}

func TestGroupRecommendBatchPartialFailure(t *testing.T) {
	sys, groups := batchSystem(t, 2)
	mixed := [][]string{groups[0], {}, groups[1]}
	batch, err := sys.GroupRecommendBatch(context.Background(), mixed, 6)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err != nil || batch[2].Err != nil {
		t.Errorf("valid groups failed: %v, %v", batch[0].Err, batch[2].Err)
	}
	if !errors.Is(batch[1].Err, ErrEmptyGroup) {
		t.Errorf("empty group error = %v, want ErrEmptyGroup", batch[1].Err)
	}
	if batch[1].Result != nil {
		t.Error("failed entry carries a result")
	}
}

func TestGroupRecommendBatchCancelledUpfront(t *testing.T) {
	sys, groups := batchSystem(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch, err := sys.GroupRecommendBatch(ctx, groups, 6)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for k, entry := range batch {
		if !errors.Is(entry.Err, context.Canceled) {
			t.Errorf("entry %d: err = %v, want context.Canceled", k, entry.Err)
		}
	}
}

// TestGroupRecommendBatchMidCancellation cancels while the batch is in
// flight (from a worker observing the first completed entry) and checks
// the invariant every entry must satisfy: either a full result or an
// error, never both, never neither.
func TestGroupRecommendBatchMidCancellation(t *testing.T) {
	sys, base := batchSystem(t, 2)
	var groups [][]string
	for i := 0; i < 8; i++ {
		groups = append(groups, base...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		cancel() // races the fan-out deliberately; -race checks the interleaving
	}()
	batch, err := sys.GroupRecommendBatch(ctx, groups, 6)
	<-done
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if len(batch) != len(groups) {
		t.Fatalf("batch returned %d entries, want %d", len(batch), len(groups))
	}
	for k, entry := range batch {
		switch {
		case entry.Err == nil && entry.Result == nil:
			t.Errorf("entry %d has neither result nor error", k)
		case entry.Err != nil && entry.Result != nil:
			t.Errorf("entry %d has both result and error", k)
		case entry.Err != nil && !errors.Is(entry.Err, context.Canceled):
			t.Errorf("entry %d: err = %v, want context.Canceled", k, entry.Err)
		}
	}
}

// TestGroupRecommendBatchConcurrentWrites pounds the batch path while
// ratings arrive — the invalidation hooks must keep every served result
// internally consistent (exercised under -race in CI).
func TestGroupRecommendBatchConcurrentWrites(t *testing.T) {
	sys, groups := batchSystem(t, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			u := fmt.Sprintf("writer%02d", i)
			for j := 0; j < 5; j++ {
				if err := sys.AddRating(u, fmt.Sprintf("doc%04d", j), float64(1+j%5)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for round := 0; round < 5; round++ {
		batch, err := sys.GroupRecommendBatch(context.Background(), groups, 6)
		if err != nil {
			t.Fatal(err)
		}
		for k, entry := range batch {
			if entry.Err != nil {
				t.Fatalf("round %d group %d: %v", round, k, entry.Err)
			}
		}
	}
	wg.Wait()
}

func TestPrecomputeSimilarityWarmsAllPairs(t *testing.T) {
	sys, _ := batchSystem(t, 0)
	n := len(sys.SortedUsers())
	pairs, err := sys.PrecomputeSimilarity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1) / 2; pairs != want {
		t.Fatalf("precomputed %d pairs, want %d", pairs, want)
	}
	// A second call finds everything cached.
	pairs, err = sys.PrecomputeSimilarity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 0 {
		t.Fatalf("re-precompute recomputed %d pairs, want 0", pairs)
	}
	// A rating write invalidates with user scope: only the touched
	// user's row recomputes, the rest of the matrix stays warm.
	if err := sys.AddRating("fresh", "doc0001", 5); err != nil {
		t.Fatal(err)
	}
	pairs, err = sys.PrecomputeSimilarity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pairs != n { // fresh × the n existing users
		t.Fatalf("post-write precompute %d pairs, want %d (only the touched row)", pairs, n)
	}
	n++
	// A profile write has global blast radius; the next precompute
	// rebuilds the full matrix. InvalidateCaches behaves the same.
	if err := sys.AddPatient(Patient{ID: "fresh"}); err != nil {
		t.Fatal(err)
	}
	pairs, err = sys.PrecomputeSimilarity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1) / 2; pairs != want {
		t.Fatalf("post-profile-write precompute %d pairs, want %d", pairs, want)
	}
	sys.InvalidateCaches()
	pairs, err = sys.PrecomputeSimilarity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1) / 2; pairs != want {
		t.Fatalf("post-InvalidateCaches precompute %d pairs, want %d", pairs, want)
	}
}

func TestGroupRecommendBatchEmpty(t *testing.T) {
	sys, _ := batchSystem(t, 1)
	batch, err := sys.GroupRecommendBatch(context.Background(), nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 0 {
		t.Fatalf("empty batch returned %d entries", len(batch))
	}
}

func TestConfigWorkersValidation(t *testing.T) {
	if _, err := New(Config{Workers: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Workers=-1 error = %v, want ErrBadConfig", err)
	}
	sys, err := New(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().Workers != 3 {
		t.Errorf("Workers = %d, want 3", sys.Config().Workers)
	}
}
