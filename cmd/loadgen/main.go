// Command loadgen replays a sustained, mixed read/write workload
// against the recommender and reports per-operation-class latency
// (RPS, p50/p95/p99/max) — the CLI over internal/loadtest.
//
// Two targets:
//
//	loadgen -requests 2000                          # in-process System
//	loadgen -target http://localhost:8080 -duration 30s
//
// The in-process mode builds a System, seeds it with the synthetic
// dataset (same generator as iphrd -demo), and drives it directly —
// the CI load-smoke configuration. The HTTP mode drives a live iphrd
// over the v1 API; point it at a server started with -demo and
// matching -dataset-seed/-users/-items so the generated user and item
// IDs exist there.
//
// The workload is deterministic per -seed in -requests mode: the same
// flags replay the identical request stream, which is what makes load
// numbers comparable across commits. -approx-every N marks every Nth
// group query approx, exercising the cluster candidate index under
// concurrent writes (inproc needs -candidate-index; HTTP targets need
// an iphrd started with it); when the in-process index is on, the
// report gains an "index" stats section mirroring /v1/stats. The report prints as JSON on
// stdout; -out merges it as the "load" section of a BENCH_<date>.json
// trajectory file next to the "benchmarks" section scripts/bench.sh
// writes (see docs/ops.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fairhealth"
	"fairhealth/internal/candidates"
	"fairhealth/internal/dataset"
	"fairhealth/internal/loadtest"
	"fairhealth/internal/partition"
)

// engine is what loadgen needs from the in-process target beyond the
// loadtest surface: seeding, stats, and shutdown.
type engine interface {
	loadtest.Engine
	Stats() fairhealth.Stats
	CandidateIndexStats() (candidates.Stats, bool)
	Close() error
}

func main() {
	target := flag.String("target", "inproc", `"inproc" or a live iphrd base URL (http://host:port)`)
	requests := flag.Int("requests", 0, "total operation budget (deterministic mode; exactly one of -requests/-duration)")
	duration := flag.Duration("duration", 0, "wall-clock bound (exactly one of -requests/-duration)")
	workers := flag.Int("workers", 4, "concurrent workers")
	seed := flag.Int64("seed", 1, "workload seed")
	mixSpec := flag.String("mix", "", `operation mix weights, e.g. "single=60,batch=10,stream=5,rate=24,profile=1" (empty = default mix)`)
	groupSize := flag.Int("group-size", 3, "members per group query")
	batchGroups := flag.Int("batch-groups", 4, "queries per batch/stream operation")
	z := flag.Int("z", 6, "recommendations per group")
	k := flag.Int("k", 0, "fairness list size override (0 = server default)")
	scorers := flag.String("scorers", "", `comma-separated scorers to cycle (e.g. "user-cf,item-cf,profile"; empty = server default)`)
	aggs := flag.String("aggs", "", `comma-separated aggregations to cycle (e.g. "avg,min"; empty = server default)`)
	approxEvery := flag.Int("approx-every", 0, "mark every Nth group query approx (0 = exact only; the target needs its candidate index on)")
	out := flag.String("out", "", "BENCH_<date>.json file to merge the load section into (empty = stdout only)")

	datasetSeed := flag.Int64("dataset-seed", 1, "synthetic dataset seed (must match the server's -demo-seed for HTTP targets)")
	users := flag.Int("users", 60, "synthetic dataset patients")
	items := flag.Int("items", 120, "synthetic dataset documents")
	ratingsPerUser := flag.Int("ratings-per-user", 25, "synthetic dataset ratings per patient (inproc seeding only)")

	delta := flag.Float64("delta", 0.5, "inproc: peer threshold δ")
	scorer := flag.String("scorer", "", "inproc: default relevance scorer")
	cacheTTL := flag.Duration("cache-ttl", 0, "inproc: cache lease (0 = never expire)")
	cacheMaxEntries := flag.Int("cache-max-entries", 0, "inproc: LRU bound per cache layer (0 = unbounded)")
	cacheMaxCost := flag.Int64("cache-max-cost", 0, "inproc: cost budget per cache layer (0 = unbounded)")
	cacheTTLMin := flag.Duration("cache-ttl-min", 0, "inproc: adaptive TTL lower bound (with -cache-ttl-max enables adaptation)")
	cacheTTLMax := flag.Duration("cache-ttl-max", 0, "inproc: adaptive TTL upper bound")
	cacheAdaptEvery := flag.Duration("cache-adapt-every", 0, "inproc: adaptation period (0 = 10s default when enabled)")
	candidateIndex := flag.Bool("candidate-index", false, "inproc: enable the cluster peer-candidate index")
	candidateK := flag.Int("candidate-k", 0, "inproc: cluster count for the candidate index (0 = √n; needs -candidate-index)")
	partitions := flag.Int("partitions", 0, "inproc: serve from N consistent-hash partitions behind the fan-out coordinator; the report gains a per-partition latency section (0 or 1 = unpartitioned)")
	partitionPeers := flag.String("partition-peers", "", `inproc: comma-separated worker addresses ("host:port,host:port") for the networked partition coordinator; the report gains a transport stats section (mutually exclusive with -partitions)`)
	flag.Parse()

	logger := log.New(os.Stderr, "loadgen ", log.LstdFlags)

	ds, err := dataset.Generate(dataset.Config{
		Seed: *datasetSeed, Users: *users, Items: *items, RatingsPerUser: *ratingsPerUser,
	})
	if err != nil {
		logger.Fatalf("dataset: %v", err)
	}
	cfg := loadtest.Config{
		Workers:     *workers,
		Requests:    *requests,
		Duration:    *duration,
		Seed:        *seed,
		GroupSize:   *groupSize,
		BatchGroups: *batchGroups,
		Z:           *z,
		K:           *k,
		ApproxEvery: *approxEvery,
	}
	if *mixSpec != "" {
		mix, err := parseMix(*mixSpec)
		if err != nil {
			logger.Fatalf("mix: %v", err)
		}
		cfg.Mix = mix
	}
	if *scorers != "" {
		cfg.Scorers = strings.Split(*scorers, ",")
	}
	if *aggs != "" {
		cfg.Aggregations = strings.Split(*aggs, ",")
	}
	for _, id := range ds.Profiles.IDs() {
		cfg.Users = append(cfg.Users, string(id))
	}
	for _, d := range ds.Documents {
		cfg.Items = append(cfg.Items, string(d.ID))
	}
	// Profile writes re-use each patient's real coded problems, so the
	// generated profiles always validate against the ontology.
	problems := map[string]bool{}
	for _, id := range ds.Profiles.IDs() {
		prof, err := ds.Profiles.Get(id)
		if err != nil {
			continue
		}
		for _, c := range prof.Problems {
			problems[string(c)] = true
		}
	}
	for c := range problems {
		cfg.Problems = append(cfg.Problems, c)
	}

	tgt, err := loadtest.ParseTarget(*target, nil)
	if err != nil {
		logger.Fatal(err)
	}
	var sys engine
	var netCoord *partition.Networked
	httpTarget := tgt != nil
	if tgt == nil { // inproc
		if *approxEvery > 0 && !*candidateIndex {
			logger.Fatal("-approx-every needs -candidate-index for the in-process target")
		}
		sysCfg := fairhealth.Config{
			Delta: *delta, Scorer: *scorer,
			CacheTTL: *cacheTTL, CacheMaxEntries: *cacheMaxEntries, CacheMaxCost: *cacheMaxCost,
			CacheTTLMin: *cacheTTLMin, CacheTTLMax: *cacheTTLMax, CacheAdaptEvery: *cacheAdaptEvery,
			CandidateIndex: *candidateIndex, CandidateK: *candidateK,
		}
		if *partitionPeers != "" {
			if *partitions > 1 {
				logger.Fatal("-partition-peers and -partitions are mutually exclusive")
			}
			peers := splitPeers(*partitionPeers)
			coord, cerr := partition.NewNetworked(sysCfg, peers, partition.NetOptions{})
			if cerr != nil {
				logger.Fatalf("networked coordinator: %v", cerr)
			}
			cfg.PartitionOf = coord.Owner
			logger.Printf("networked partitioned serving: %d/%d peers live",
				coord.LiveCount(), coord.PartitionCount())
			netCoord = coord
			sys = coord
		} else if *partitions > 1 {
			sysCfg.Partitions = *partitions
			coord, cerr := partition.New(sysCfg, partition.Options{})
			if cerr != nil {
				logger.Fatalf("coordinator: %v", cerr)
			}
			cfg.PartitionOf = coord.Owner
			logger.Printf("partitioned serving: %d partitions", coord.PartitionCount())
			sys = coord
		} else {
			sys, err = fairhealth.New(sysCfg)
			if err != nil {
				logger.Fatalf("system: %v", err)
			}
		}
		defer sys.Close()
		start := time.Now()
		for _, tr := range ds.Ratings.Triples() {
			if err := sys.AddRating(string(tr.User), string(tr.Item), float64(tr.Value)); err != nil {
				logger.Fatalf("seed rating: %v", err)
			}
		}
		for _, id := range ds.Profiles.IDs() {
			prof, err := ds.Profiles.Get(id)
			if err != nil {
				logger.Fatalf("seed profile: %v", err)
			}
			probs := make([]string, len(prof.Problems))
			for i, c := range prof.Problems {
				probs[i] = string(c)
			}
			p := fairhealth.Patient{ID: string(prof.ID), Age: prof.Age, Gender: string(prof.Gender),
				Problems: probs, Medications: prof.Medications}
			if err := sys.AddPatient(p); err != nil {
				logger.Fatalf("seed patient: %v", err)
			}
		}
		st := sys.Stats()
		logger.Printf("in-process system seeded in %v: %d patients, %d items, %d ratings",
			time.Since(start).Round(time.Millisecond), st.Patients, st.Items, st.Ratings)
		tgt = loadtest.InProc{Sys: sys}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("running against %s: workers=%d requests=%d duration=%v seed=%d",
		*target, cfg.Workers, cfg.Requests, cfg.Duration, cfg.Seed)
	rep, err := loadtest.Run(ctx, tgt, cfg)
	if err != nil {
		logger.Fatalf("run: %v", err)
	}
	if netCoord != nil {
		snap := netCoord.TransportStats()
		rep.Transport = snap
		logger.Printf("transport: rpcs=%d coalesced %.1f members/rpc  out=%dB in=%dB  retries=%d errors=%d  peers %d/%d live",
			snap.RPCs, snap.MembersPerRPC, snap.BytesOut, snap.BytesIn, snap.Retries, snap.Errors, snap.PeersLive, snap.PeersTotal)
	} else if httpTarget {
		// HTTP target: if the server runs the networked coordinator,
		// mirror its /v1/stats transport section into the report.
		if raw := fetchTransport(*target); raw != nil {
			rep.Transport = raw
		}
	}
	if sys != nil {
		if st, ok := sys.CandidateIndexStats(); ok {
			rep.Index = st
			logger.Printf("candidate index: built=%v clusters=%d rebuilds=%d reassignments=%d writes-since=%d",
				st.Built, st.Clusters, st.Rebuilds, st.Reassignments, st.WritesSinceRebuild)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		logger.Fatal(err)
	}
	for _, cl := range loadtest.Classes {
		c, ok := rep.Classes[string(cl)]
		if !ok {
			continue
		}
		logger.Printf("%-14s %7d ops %8.1f rps  p50 %s  p95 %s  p99 %s  max %s  errors %d",
			cl, c.Count, c.RPS, ms(c.P50Ns), ms(c.P95Ns), ms(c.P99Ns), ms(c.MaxNs), c.Errors)
	}
	if len(rep.Partitions) > 0 {
		ids := make([]string, 0, len(rep.Partitions))
		for id := range rep.Partitions {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			for _, cl := range loadtest.Classes {
				c, ok := rep.Partitions[id][string(cl)]
				if !ok {
					continue
				}
				logger.Printf("p%-2s %-10s %7d ops %8.1f rps  p50 %s  p95 %s  p99 %s  errors %d",
					id, cl, c.Count, c.RPS, ms(c.P50Ns), ms(c.P95Ns), ms(c.P99Ns), c.Errors)
			}
		}
	}
	if rep.TotalErrors > 0 {
		logger.Printf("WARNING: %d/%d operations failed", rep.TotalErrors, rep.TotalOps)
	}

	if *out != "" {
		meta := map[string]any{"date": time.Now().Format("2006-01-02")}
		if err := loadtest.MergeBenchFile(*out, rep, meta); err != nil {
			logger.Fatalf("merge %s: %v", *out, err)
		}
		logger.Printf("load section merged into %s", *out)
	}
	if rep.TotalErrors > 0 {
		os.Exit(1)
	}
}

// splitPeers parses a comma-separated peer address list, trimming
// whitespace and dropping empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// fetchTransport pulls the transport section out of an HTTP target's
// /v1/stats report; nil when the server is not a networked
// coordinator (or the fetch fails — the report just omits the
// section).
func fetchTransport(base string) any {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var body struct {
		Transport json.RawMessage `json:"transport"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	if len(body.Transport) == 0 || string(body.Transport) == "null" {
		return nil
	}
	return body.Transport
}

// ms renders nanoseconds as short human milliseconds for the summary.
func ms(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e6, 'f', 2, 64) + "ms"
}

// parseMix parses "single=60,batch=10,stream=5,rate=24,profile=1";
// omitted classes weigh 0.
func parseMix(spec string) (loadtest.Mix, error) {
	var m loadtest.Mix
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix element %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch key {
		case "single":
			m.Single = w
		case "batch":
			m.Batch = w
		case "stream":
			m.Stream = w
		case "rate":
			m.Rate = w
		case "profile":
			m.Profile = w
		default:
			return m, fmt.Errorf("unknown mix class %q (single|batch|stream|rate|profile)", key)
		}
	}
	if m.Single+m.Batch+m.Stream+m.Rate+m.Profile == 0 {
		return m, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return m, nil
}
