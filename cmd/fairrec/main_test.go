package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// genTestData runs cmdGen into a temp dir and returns the ratings and
// profiles paths.
func genTestData(t *testing.T) (ratingsPath, profilesPath string) {
	t.Helper()
	dir := t.TempDir()
	if err := cmdGen([]string{"-seed", "3", "-users", "30", "-items", "40", "-ratings-per-user", "15", "-out", dir}); err != nil {
		t.Fatalf("cmdGen: %v", err)
	}
	return filepath.Join(dir, "ratings.csv"), filepath.Join(dir, "profiles.json")
}

func TestCmdGenWritesFiles(t *testing.T) {
	ratingsPath, profilesPath := genTestData(t)
	for _, p := range []string{ratingsPath, profilesPath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing output %s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("empty output %s", p)
		}
	}
	raw, err := os.ReadFile(ratingsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 30*15 {
		t.Errorf("ratings rows = %d, want 450", len(lines))
	}
}

func TestCmdRecommend(t *testing.T) {
	ratingsPath, profilesPath := genTestData(t)
	if err := cmdRecommend([]string{"-ratings", ratingsPath, "-profiles", profilesPath, "-user", "patient0001", "-k", "5"}); err != nil {
		t.Errorf("cmdRecommend: %v", err)
	}
	if err := cmdRecommend([]string{"-ratings", ratingsPath}); err == nil {
		t.Error("missing -user accepted")
	}
	if err := cmdRecommend([]string{"-ratings", "/nonexistent.csv", "-user", "x"}); err == nil {
		t.Error("missing ratings file accepted")
	}
}

func TestCmdGroupMethods(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	users := "patient0000,patient0001,patient0002"
	for _, method := range []string{"greedy", "brute", "topz"} {
		if err := cmdGroup([]string{"-ratings", ratingsPath, "-users", users, "-z", "4", "-method", method, "-m", "12"}); err != nil {
			t.Errorf("cmdGroup %s: %v", method, err)
		}
	}
	if err := cmdGroup([]string{"-ratings", ratingsPath, "-users", users, "-method", "psychic"}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := cmdGroup([]string{"-ratings", ratingsPath}); err == nil {
		t.Error("missing -users accepted")
	}
}

func TestCmdBatch(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	groups := "patient0000,patient0001;patient0002,patient0003"
	if err := cmdBatch([]string{"-ratings", ratingsPath, "-groups", groups, "-z", "4"}); err != nil {
		t.Errorf("cmdBatch: %v", err)
	}
	if err := cmdBatch([]string{"-ratings", ratingsPath, "-groups", groups, "-z", "4", "-stream"}); err != nil {
		t.Errorf("cmdBatch -stream: %v", err)
	}
	if err := cmdBatch([]string{"-ratings", ratingsPath}); err == nil {
		t.Error("missing -groups accepted")
	}
}

func TestCmdMR(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	if err := cmdMR([]string{"-ratings", ratingsPath, "-users", "patient0000,patient0001", "-z", "4"}); err != nil {
		t.Errorf("cmdMR: %v", err)
	}
	if err := cmdMR([]string{"-ratings", ratingsPath}); err == nil {
		t.Error("missing -users accepted")
	}
}

func TestCmdTable2Quick(t *testing.T) {
	if err := cmdTable2([]string{"-quick", "-reps", "1"}); err != nil {
		t.Errorf("cmdTable2: %v", err)
	}
	if err := cmdTable2([]string{"-quick", "-reps", "1", "-csv"}); err != nil {
		t.Errorf("cmdTable2 csv: %v", err)
	}
}

func TestCmdAblation(t *testing.T) {
	if err := cmdAblation([]string{"-m", "15", "-z", "5"}); err != nil {
		t.Errorf("cmdAblation: %v", err)
	}
}

func TestCmdTableI(t *testing.T) {
	if err := cmdTableI(nil); err != nil {
		t.Errorf("cmdTableI: %v", err)
	}
}

func TestCmdEvaluate(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	if err := cmdEvaluate([]string{"-ratings", ratingsPath, "-k", "5"}); err != nil {
		t.Errorf("cmdEvaluate: %v", err)
	}
}

func TestCmdSweep(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	if err := cmdSweep([]string{"-ratings", ratingsPath, "-k", "5"}); err != nil {
		t.Errorf("cmdSweep: %v", err)
	}
}

func TestCmdClustering(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	if err := cmdClustering([]string{"-ratings", ratingsPath, "-k", "3"}); err != nil {
		t.Errorf("cmdClustering: %v", err)
	}
	if err := cmdClustering([]string{"-ratings", ratingsPath, "-k", "three"}); err == nil {
		t.Error("bad -k accepted")
	}
}

// TestCmdGroupScorers drives the -scorer flag end to end: each
// registered backend serves, and an unknown one is rejected.
func TestCmdGroupScorers(t *testing.T) {
	ratingsPath, profilesPath := genTestData(t)
	users := "patient0000,patient0001,patient0002"
	for _, scorer := range []string{"user-cf", "item-cf", "profile"} {
		if err := cmdGroup([]string{
			"-ratings", ratingsPath, "-profiles", profilesPath,
			"-users", users, "-z", "4", "-delta", "0.3", "-scorer", scorer,
		}); err != nil {
			t.Errorf("cmdGroup -scorer %s: %v", scorer, err)
		}
	}
	if err := cmdGroup([]string{"-ratings", ratingsPath, "-users", users, "-scorer", "psychic"}); err == nil {
		t.Error("unknown scorer accepted")
	}
}

func TestCmdBatchScorer(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	groups := "patient0000,patient0001;patient0002,patient0003"
	if err := cmdBatch([]string{"-ratings", ratingsPath, "-groups", groups, "-z", "4", "-scorer", "item-cf"}); err != nil {
		t.Errorf("cmdBatch -scorer item-cf: %v", err)
	}
	if err := cmdBatch([]string{"-ratings", ratingsPath, "-groups", groups, "-scorer", "psychic"}); err == nil {
		t.Error("unknown scorer accepted in batch")
	}
}

func TestCmdProfileScorerRequiresProfiles(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	if err := cmdGroup([]string{"-ratings", ratingsPath, "-users", "patient0000,patient0001", "-scorer", "profile"}); err == nil {
		t.Error("profile scorer without -profiles accepted")
	}
	if err := cmdBatch([]string{"-ratings", ratingsPath, "-groups", "patient0000,patient0001", "-scorer", "profile"}); err == nil {
		t.Error("batch profile scorer without -profiles accepted")
	}
}

func TestCmdGroupTopzHonorsScorer(t *testing.T) {
	ratingsPath, _ := genTestData(t)
	users := "patient0000,patient0001"
	if err := cmdGroup([]string{"-ratings", ratingsPath, "-users", users, "-method", "topz", "-scorer", "item-cf", "-z", "3"}); err != nil {
		t.Errorf("topz with item-cf: %v", err)
	}
	if err := cmdGroup([]string{"-ratings", ratingsPath, "-users", users, "-method", "topz", "-scorer", "psychic"}); err == nil {
		t.Error("topz with unknown scorer accepted")
	}
}
