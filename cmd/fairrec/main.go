// Command fairrec is the command-line face of the fairness-aware group
// recommender. Subcommands:
//
//	gen        generate a synthetic health dataset (ratings CSV + profiles JSON)
//	recommend  personal top-k recommendations for one user
//	group      fairness-aware group recommendations (greedy, brute force, or plain top-z)
//	batch      fair recommendations for many groups over a bounded worker pool
//	mr         run the §IV MapReduce pipeline end to end
//	table2     regenerate the paper's Table II (brute force vs heuristic)
//	ablation   aggregator ablation (min vs avg vs max)
//	tablei     the paper's Table I semantic-similarity walkthrough
//
// Run `fairrec <subcommand> -h` for flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fairhealth"
	"fairhealth/internal/dataset"
	"fairhealth/internal/eval"
	"fairhealth/internal/metrics"
	"fairhealth/internal/model"
	"fairhealth/internal/mrpipeline"
	"fairhealth/internal/phr"
	"fairhealth/internal/ratings"
	"fairhealth/internal/snomed"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "group":
		err = cmdGroup(os.Args[2:])
	case "batch":
		err = cmdBatch(os.Args[2:])
	case "mr":
		err = cmdMR(os.Args[2:])
	case "table2":
		err = cmdTable2(os.Args[2:])
	case "ablation":
		err = cmdAblation(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "clustering":
		err = cmdClustering(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "tablei":
		err = cmdTableI(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fairrec: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fairrec: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `fairrec — fairness-aware group recommendations in the health domain

Usage:
  fairrec gen       -seed 1 -users 100 -items 200 -out data/           generate dataset
  fairrec recommend -ratings data/ratings.csv -user patient0001 -k 10  personal top-k
  fairrec group     -ratings data/ratings.csv -users a,b,c -z 10       fair group top-z
                    [-scorer user-cf|item-cf|profile]                  pick the relevance backend
  fairrec batch     -ratings data/ratings.csv -groups "a,b;c,d" -z 10  many groups in parallel
                    [-stream] [-scorer s]                              print entries as they complete
  fairrec mr        -ratings data/ratings.csv -users a,b,c -z 10       MapReduce pipeline
  fairrec table2    [-quick]                                           reproduce Table II
  fairrec ablation                                                     aggregator ablation
  fairrec sweep     -ratings data/ratings.csv                          δ threshold sweep
  fairrec clustering -ratings data/ratings.csv -k 3,5                  clustered peers ablation
  fairrec evaluate  -ratings data/ratings.csv                          holdout accuracy metrics
  fairrec tablei                                                       Table I walkthrough
`)
}

// loadSystem builds a System from a ratings CSV (and optional profiles
// JSON).
func loadSystem(ratingsPath, profilesPath string, cfg fairhealth.Config) (*fairhealth.System, error) {
	sys, err := fairhealth.New(cfg)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(ratingsPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := sys.LoadRatingsCSV(f); err != nil {
		return nil, err
	}
	if profilesPath != "" {
		pf, err := os.Open(profilesPath)
		if err != nil {
			return nil, err
		}
		defer pf.Close()
		store, err := phr.ReadJSON(pf, snomed.Load())
		if err != nil {
			return nil, err
		}
		for _, id := range store.IDs() {
			prof, err := store.Get(id)
			if err != nil {
				return nil, err
			}
			problems := make([]string, len(prof.Problems))
			for k, c := range prof.Problems {
				problems[k] = string(c)
			}
			err = sys.AddPatient(fairhealth.Patient{
				ID: string(prof.ID), Age: prof.Age, Gender: string(prof.Gender),
				Problems: problems, Medications: prof.Medications,
				Procedures: prof.Procedures, Allergies: prof.Allergies, Notes: prof.Notes,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return sys, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	users := fs.Int("users", 100, "number of patients")
	items := fs.Int("items", 200, "number of documents")
	perUser := fs.Int("ratings-per-user", 20, "ratings per patient")
	clusters := fs.Int("clusters", 4, "latent preference clusters")
	out := fs.String("out", "data", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := dataset.Generate(dataset.Config{
		Seed: *seed, Users: *users, Items: *items,
		RatingsPerUser: *perUser, Clusters: *clusters,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	rf, err := os.Create(*out + "/ratings.csv")
	if err != nil {
		return err
	}
	defer rf.Close()
	if err := ds.Ratings.WriteCSV(rf); err != nil {
		return err
	}
	pf, err := os.Create(*out + "/profiles.json")
	if err != nil {
		return err
	}
	defer pf.Close()
	if err := ds.Profiles.WriteJSON(pf); err != nil {
		return err
	}
	fmt.Printf("generated %d patients, %d documents, %d ratings (sparsity %.1f%%)\n",
		ds.Profiles.Len(), len(ds.Documents), ds.Ratings.Len(), 100*ds.Ratings.Sparsity())
	fmt.Printf("wrote %s/ratings.csv and %s/profiles.json\n", *out, *out)
	return nil
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	ratingsPath := fs.String("ratings", "data/ratings.csv", "ratings CSV")
	profiles := fs.String("profiles", "", "profiles JSON (optional)")
	user := fs.String("user", "", "user to recommend for")
	k := fs.Int("k", 10, "list size")
	delta := fs.Float64("delta", 0.5, "peer threshold δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *user == "" {
		return fmt.Errorf("-user is required")
	}
	sys, err := loadSystem(*ratingsPath, *profiles, fairhealth.Config{Delta: *delta, K: *k})
	if err != nil {
		return err
	}
	recs, err := sys.Recommend(*user, *k)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Printf("no recommendations for %s (no peers above δ=%.2f)\n", *user, *delta)
		return nil
	}
	fmt.Printf("top-%d recommendations for %s:\n", len(recs), *user)
	for i, r := range recs {
		fmt.Printf("%2d. %-12s %.3f\n", i+1, r.Item, r.Score)
	}
	return nil
}

func cmdGroup(args []string) error {
	fs := flag.NewFlagSet("group", flag.ExitOnError)
	ratingsPath := fs.String("ratings", "data/ratings.csv", "ratings CSV")
	profiles := fs.String("profiles", "", "profiles JSON (optional)")
	users := fs.String("users", "", "comma-separated group members")
	z := fs.Int("z", 10, "recommendations to return")
	k := fs.Int("k", 10, "per-member personal list size (fairness)")
	delta := fs.Float64("delta", 0.5, "peer threshold δ")
	aggr := fs.String("aggr", "avg", "aggregation: avg (majority) or min (veto)")
	method := fs.String("method", "greedy", "greedy | brute | mapreduce | topz")
	scorer := fs.String("scorer", "", "relevance scorer: user-cf (default) | item-cf | profile")
	m := fs.Int("m", 20, "candidate pool for brute force")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users == "" {
		return fmt.Errorf("-users is required")
	}
	if *scorer == "profile" && *profiles == "" {
		// Without a corpus the profile scorer finds no peers and would
		// quietly print an empty selection.
		return fmt.Errorf("-scorer profile requires -profiles (the cosine corpus is built from patient profiles)")
	}
	// The scorer is also the system default so the topz branch — which
	// serves through GroupTopZ, not a GroupQuery — honors it too.
	sys, err := loadSystem(*ratingsPath, *profiles, fairhealth.Config{
		Delta: *delta, K: *k, Aggregation: *aggr, Scorer: *scorer,
	})
	if err != nil {
		return err
	}
	members := strings.Split(*users, ",")
	// topz is the fairness-agnostic baseline and stays a separate
	// call; everything else is one GroupQuery against Serve.
	if *method == "topz" {
		recs, err := sys.GroupTopZ(members, *z)
		if err != nil {
			return err
		}
		fmt.Printf("plain top-%d (no fairness):\n", len(recs))
		for i, r := range recs {
			fmt.Printf("%2d. %-12s %.3f\n", i+1, r.Item, r.Score)
		}
		return nil
	}
	res, err := sys.Serve(context.Background(), fairhealth.GroupQuery{
		Members: members,
		Z:       *z,
		Method:  fairhealth.Method(*method),
		BruteM:  *m,
		Scorer:  *scorer,
	})
	if err != nil {
		return err
	}
	label := "Algorithm 1 (greedy)"
	switch fairhealth.Method(*method) {
	case fairhealth.MethodBrute:
		label = fmt.Sprintf("brute force (%d combinations)", res.Combinations)
	case fairhealth.MethodMapReduce:
		label = "MapReduce pipeline + Algorithm 1"
	}
	printGroupResult(res, label)
	return nil
}

func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	ratingsPath := fs.String("ratings", "data/ratings.csv", "ratings CSV")
	profiles := fs.String("profiles", "", "profiles JSON (optional)")
	groupsArg := fs.String("groups", "", `semicolon-separated groups of comma-separated members, e.g. "a,b;c,d,e"`)
	groupsFile := fs.String("groups-file", "", "file with one comma-separated group per line (overrides -groups)")
	z := fs.Int("z", 10, "recommendations per group")
	k := fs.Int("k", 10, "per-member personal list size (fairness)")
	delta := fs.Float64("delta", 0.5, "peer threshold δ")
	aggr := fs.String("aggr", "avg", "aggregation: avg (majority) or min (veto)")
	method := fs.String("method", "greedy", "solver for every group: greedy | brute | mapreduce")
	scorer := fs.String("scorer", "", "relevance scorer for every group: user-cf (default) | item-cf | profile")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	stream := fs.Bool("stream", false, "print each group as it completes (completion order) instead of buffering the batch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var lines []string
	if *groupsFile != "" {
		raw, err := os.ReadFile(*groupsFile)
		if err != nil {
			return err
		}
		lines = strings.Split(string(raw), "\n")
	} else if *groupsArg != "" {
		lines = strings.Split(*groupsArg, ";")
	} else {
		return fmt.Errorf("-groups or -groups-file is required")
	}
	var groups [][]string
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var members []string
		for _, m := range strings.Split(line, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		if len(members) > 0 {
			groups = append(groups, members)
		}
	}
	if len(groups) == 0 {
		return fmt.Errorf("no groups given")
	}
	if *scorer == "profile" && *profiles == "" {
		return fmt.Errorf("-scorer profile requires -profiles (the cosine corpus is built from patient profiles)")
	}
	sys, err := loadSystem(*ratingsPath, *profiles, fairhealth.Config{
		Delta: *delta, K: *k, Aggregation: *aggr, Workers: *workers,
	})
	if err != nil {
		return err
	}
	queries := make([]fairhealth.GroupQuery, len(groups))
	for i, g := range groups {
		queries[i] = fairhealth.GroupQuery{Members: g, Z: *z, Method: fairhealth.Method(*method), Scorer: *scorer}
	}
	failed := 0
	printEntry := func(br fairhealth.BatchGroupResult) {
		if br.Err != nil {
			failed++
			fmt.Printf("group %d [%s]: error: %v\n", br.Index, strings.Join(br.Group, ","), br.Err)
			return
		}
		fmt.Printf("group %d [%s]: fairness %.2f, value %.3f\n", br.Index, strings.Join(br.Group, ","), br.Result.Fairness, br.Result.Value)
		for i, r := range br.Result.Items {
			fmt.Printf("  %2d. %-12s %.3f\n", i+1, r.Item, r.Score)
		}
	}
	if *stream {
		// Entries print as they complete, in completion order.
		err := sys.ServeStream(context.Background(), queries, func(br fairhealth.BatchGroupResult) error {
			printEntry(br)
			return nil
		})
		if err != nil {
			return err
		}
	} else {
		results, err := sys.ServeBatch(context.Background(), queries)
		if err != nil {
			return err
		}
		for _, br := range results {
			printEntry(br)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d groups failed", failed, len(groups))
	}
	return nil
}

func printGroupResult(res *fairhealth.GroupResult, label string) {
	fmt.Printf("%s — fairness %.3f, value %.3f\n", label, res.Fairness, res.Value)
	for i, r := range res.Items {
		fmt.Printf("%2d. %-12s group score %.3f\n", i+1, r.Item, r.Score)
	}
}

func cmdMR(args []string) error {
	fs := flag.NewFlagSet("mr", flag.ExitOnError)
	ratingsPath := fs.String("ratings", "data/ratings.csv", "ratings CSV")
	users := fs.String("users", "", "comma-separated group members")
	z := fs.Int("z", 10, "recommendations to return")
	k := fs.Int("k", 10, "per-member personal list size")
	delta := fs.Float64("delta", 0.5, "peer threshold δ")
	aggr := fs.String("aggr", "avg", "aggregation: avg or min")
	workers := fs.Int("workers", 0, "mapper/reducer workers (0 = NumCPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users == "" {
		return fmt.Errorf("-users is required")
	}
	f, err := os.Open(*ratingsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := ratings.ReadCSV(f)
	if err != nil {
		return err
	}
	var g model.Group
	for _, u := range strings.Split(*users, ",") {
		g = append(g, model.UserID(u))
	}
	out, err := mrpipeline.Run(context.Background(), store.Triples(), mrpipeline.Config{
		Group: g, Delta: *delta, MinOverlap: 2, K: *k, Z: *z,
		Aggregator: *aggr, Mappers: *workers, Reducers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("MapReduce pipeline over %d triples\n", store.Len())
	for _, job := range []string{"means", "job1", "job2", "job3", "topk"} {
		st := out.Stats[job]
		fmt.Printf("  %-5s  map in/out %6d/%6d  shuffle %6d  reduce keys %6d\n",
			job, st.MapInputs, st.MapOutputs, st.ShufflePairs, st.ReduceKeys)
	}
	fmt.Printf("candidates: %d  defined group scores: %d\n", len(out.Candidates), len(out.GroupRel))
	fmt.Printf("Algorithm 1 — fairness %.3f, value %.3f\n", out.Fair.Fairness, out.Fair.Value)
	for i, item := range out.Fair.Items {
		fmt.Printf("%2d. %-12s group score %.3f\n", i+1, item, out.GroupRel[item])
	}
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	quick := fs.Bool("quick", false, "small grid (fast smoke run)")
	full := fs.Bool("full", false, "include the slowest cells (C(30,12..16); minutes of CPU)")
	csv := fs.Bool("csv", false, "emit CSV instead of markdown")
	seed := fs.Int64("seed", 1, "instance seed")
	groupSize := fs.Int("group", 4, "group size |G|")
	reps := fs.Int("reps", 3, "repetitions per cell (min time reported)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := eval.Table2Config{Seed: *seed, GroupSize: *groupSize, Repetitions: *reps}
	switch {
	case *quick:
		cfg.Ms = []int{10, 15}
		cfg.Zs = []int{4, 8}
	case *full:
		cfg.Ms = []int{10, 20, 30}
		cfg.Zs = []int{4, 8, 12, 16, 20}
	default:
		cfg.Ms = []int{10, 20, 30}
		cfg.Zs = []int{4, 8, 12, 16, 20}
		cfg.MaxCombinations = 40_000_000 // skip the multi-minute cells
	}
	rows, err := eval.RunTable2(cfg)
	if err != nil {
		return err
	}
	if *csv {
		if err := eval.WriteCSV(os.Stdout, rows); err != nil {
			return err
		}
	} else {
		if err := eval.WriteMarkdown(os.Stdout, rows); err != nil {
			return err
		}
	}
	if err := eval.CheckProposition1(rows, *groupSize); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "\nProposition 1 verified: both methods reach fairness 1 on every row with z ≥ |G|.")
	return nil
}

func cmdAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "instance seed")
	n := fs.Int("group", 4, "group size")
	m := fs.Int("m", 30, "candidate pool")
	k := fs.Int("k", 10, "personal list size")
	z := fs.Int("z", 8, "recommendations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := eval.RunAggregatorAblation(*seed, *n, *m, *k, *z)
	if err != nil {
		return err
	}
	fmt.Println("| aggregator | fairness | Σ relevance | value |")
	fmt.Println("|------------|----------|-------------|-------|")
	for _, r := range rows {
		fmt.Printf("| %-10s | %.3f | %.3f | %.3f |\n", r.Aggregator, r.Fairness, r.SumRel, r.Value)
	}
	return nil
}

func loadRatingsOnly(path string) (*ratings.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ratings.ReadCSV(f)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	ratingsPath := fs.String("ratings", "data/ratings.csv", "ratings CSV")
	minOverlap := fs.Int("min-overlap", 3, "minimum co-rated items")
	k := fs.Int("k", 10, "ranking metric cutoff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := loadRatingsOnly(*ratingsPath)
	if err != nil {
		return err
	}
	rows, err := eval.RunDeltaSweep(store,
		[]float64{0.5, 0.6, 0.7, 0.8, 0.9}, *minOverlap,
		metrics.HoldoutConfig{Seed: 1, K: *k}, 20)
	if err != nil {
		return err
	}
	return eval.WriteDeltaSweep(os.Stdout, rows)
}

func cmdClustering(args []string) error {
	fs := flag.NewFlagSet("clustering", flag.ExitOnError)
	ratingsPath := fs.String("ratings", "data/ratings.csv", "ratings CSV")
	ks := fs.String("k", "3,6", "comma-separated cluster counts")
	delta := fs.Float64("delta", 0.55, "peer threshold δ")
	minOverlap := fs.Int("min-overlap", 3, "minimum co-rated items")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := loadRatingsOnly(*ratingsPath)
	if err != nil {
		return err
	}
	var kList []int
	for _, s := range strings.Split(*ks, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil {
			return fmt.Errorf("bad -k element %q: %w", s, err)
		}
		kList = append(kList, v)
	}
	rows, err := eval.RunClusteringAblation(store, kList, *delta, *minOverlap,
		metrics.HoldoutConfig{Seed: 1, K: 10}, 15)
	if err != nil {
		return err
	}
	return eval.WriteClusteringAblation(os.Stdout, rows)
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	ratingsPath := fs.String("ratings", "data/ratings.csv", "ratings CSV")
	delta := fs.Float64("delta", 0.55, "peer threshold δ")
	minOverlap := fs.Int("min-overlap", 3, "minimum co-rated items")
	k := fs.Int("k", 10, "ranking cutoff")
	testFrac := fs.Float64("test-fraction", 0.2, "withheld fraction per user")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := loadRatingsOnly(*ratingsPath)
	if err != nil {
		return err
	}
	rep, err := metrics.EvaluateHoldout(store, metrics.CFFactory(*delta, *minOverlap),
		metrics.HoldoutConfig{Seed: 1, K: *k, TestFraction: *testFrac})
	if err != nil {
		return err
	}
	fmt.Printf("holdout evaluation (δ=%.2f, min-overlap=%d, %d train / %d test ratings)\n",
		*delta, *minOverlap, rep.TrainRatings, rep.TestRatings)
	fmt.Printf("  RMSE                %.4f\n", rep.RMSE)
	fmt.Printf("  MAE                 %.4f\n", rep.MAE)
	fmt.Printf("  prediction coverage %.4f\n", rep.PredictionCoverage)
	fmt.Printf("  precision@%-2d       %.4f\n", *k, rep.PrecisionAtK)
	fmt.Printf("  recall@%-2d          %.4f\n", *k, rep.RecallAtK)
	fmt.Printf("  F1@%-2d              %.4f\n", *k, rep.F1AtK)
	fmt.Printf("  nDCG@%-2d            %.4f\n", *k, rep.NDCGAtK)
	fmt.Printf("  catalog coverage    %.4f\n", rep.CatalogCoverage)
	fmt.Printf("  users evaluated     %d\n", rep.UsersEvaluated)
	return nil
}

func cmdTableI(args []string) error {
	fs := flag.NewFlagSet("tablei", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ont := snomed.Load()
	patients := phr.TableIPatients()
	fmt.Println("Table I patients (paper §V.C):")
	for _, p := range patients {
		var names []string
		for _, c := range p.Problems {
			concept, _ := ont.Concept(c)
			names = append(names, concept.Name)
		}
		fmt.Printf("  %-9s age %2d %-6s problems: %s\n", p.ID, p.Age, p.Gender, strings.Join(names, ", "))
	}
	d12, err := ont.PathLength(snomed.AcuteBronchitis, snomed.ChestPain)
	if err != nil {
		return err
	}
	d13, err := ont.PathLength(snomed.Tracheobronchitis, snomed.AcuteBronchitis)
	if err != nil {
		return err
	}
	fmt.Printf("\nshortest path (acute bronchitis ↔ chest pain)        = %d (paper: 5)\n", d12)
	fmt.Printf("shortest path (tracheobronchitis ↔ acute bronchitis) = %d (paper: 2)\n", d13)
	s12, _, err := ont.SetSimilarity(patients[0].Problems, patients[1].Problems)
	if err != nil {
		return err
	}
	s13, _, err := ont.SetSimilarity(patients[0].Problems, patients[2].Problems)
	if err != nil {
		return err
	}
	fmt.Printf("\nsemantic similarity SS(P1,P2) = %.4f\n", s12)
	fmt.Printf("semantic similarity SS(P1,P3) = %.4f\n", s13)
	fmt.Printf("SS(P1,P3) > SS(P1,P2): %v (paper: true)\n", s13 > s12)
	return nil
}
