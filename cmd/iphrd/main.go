// Command iphrd serves the recommender over HTTP — the iPHR-style
// service of the paper's architecture (Fig. 1). Patients post profiles
// and document ratings; caregivers query fair group recommendations
// through the v1 API (one typed GroupQuery body; see docs/api.md).
//
//	iphrd -addr :8080 -demo            # start with a demo dataset loaded
//	curl -X POST localhost:8080/v1/groups/recommend \
//	    -d '{"members":["patient0000","patient0001"],"z":10}'
//
// Every request passes the middleware chain (request IDs, structured
// logs, panic recovery, bounded in-flight limiter, per-request
// timeout); -max-inflight and -timeout tune the bounds, and
// -adaptive-target-p95 switches the limiter to AIMD mode (the
// admission bound tracks observed p95 latency against the target,
// never dropping below -min-inflight). The warm caches under the
// scoring path are tuned with -cache-ttl (entries age out across
// requests), -cache-max-entries (LRU bound per layer), and
// -cache-max-cost (size-aware budget per layer); -cache-ttl-min/-max
// turn on TTL adaptation (the lease retargets every
// -cache-adapt-every from observed hit/expiry/age signals). GET
// /v1/stats reports the cache hit/miss/eviction/expiration counters,
// per-layer entry-age histograms, live TTLs, and the limiter's
// current bound. -scorer sets the default
// relevance backend (user-cf | item-cf | profile) for queries that
// name none. -candidate-index turns on the cluster peer-candidate
// index (-candidate-k sizes it, 0 = √n): exact queries get a
// bit-identical prefiltered peer scan, queries with "approx":true
// restrict peer discovery to the query user's cluster neighborhood,
// and /v1/stats gains an "index" section (clusters, inertia,
// reassignments, rebuilds, last-rebuild age). -partitions=N serves
// from N consistent-hash partitions behind a fan-out/merge coordinator
// (answers stay bit-identical to unpartitioned serving; /v1/stats
// gains a "partitions" section with per-partition ownership, replay
// lag, and fan-out counters; composes with -state, where the shared
// WAL bootstraps every partition by snapshot+replay). -pprof ADDR
// serves net/http/pprof on its own listener and mux, fully separate
// from the API address (off by default; see docs/ops.md for the
// profiling workflow). SIGINT/SIGTERM shut
// down gracefully: the listener closes, in-flight requests drain for
// up to -drain-timeout, then the system is closed cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fairhealth"
	"fairhealth/internal/dataset"
	"fairhealth/internal/httpapi"
	"fairhealth/internal/partition"
	"fairhealth/internal/partition/transport"
)

// backend is what main needs from the serving engine: the HTTP surface
// plus a clean shutdown. Both fairhealth.System and the partitioned
// Coordinator satisfy it.
type backend interface {
	httpapi.Backend
	Close() error
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "preload a synthetic demo dataset")
	demoSeed := flag.Int64("demo-seed", 1, "demo dataset seed")
	demoUsers := flag.Int("demo-users", 60, "demo dataset patients")
	delta := flag.Float64("delta", 0.5, "peer threshold δ")
	k := flag.Int("k", 10, "personal list size (fairness)")
	aggr := flag.String("aggr", "avg", "group aggregation: avg or min")
	scorer := flag.String("scorer", "", "default relevance scorer for queries that name none: user-cf | item-cf | profile (empty = user-cf)")
	cacheTTL := flag.Duration("cache-ttl", 0, "lifetime of warm similarity rows and peer sets across requests (0 = never expire)")
	cacheMaxEntries := flag.Int("cache-max-entries", 0, "LRU bound per cache layer (0 = unbounded)")
	cacheMaxCost := flag.Int64("cache-max-cost", 0, "size-aware cost budget per cache layer (0 = unbounded)")
	cacheTTLMin := flag.Duration("cache-ttl-min", 0, "adaptive TTL lower bound (set with -cache-ttl-max and -cache-ttl to enable adaptation)")
	cacheTTLMax := flag.Duration("cache-ttl-max", 0, "adaptive TTL upper bound")
	cacheAdaptEvery := flag.Duration("cache-adapt-every", 0, "cache TTL adaptation period (0 = 10s default when adaptation is enabled)")
	candidateIndex := flag.Bool("candidate-index", false, "enable the cluster peer-candidate index (exact-mode prefilter + opt-in approx queries)")
	candidateK := flag.Int("candidate-k", 0, "cluster count for the candidate index (0 = √n; needs -candidate-index)")
	partitions := flag.Int("partitions", 0, "serve from N consistent-hash partitions behind a fan-out/merge coordinator (0 or 1 = unpartitioned)")
	partitionListen := flag.String("partition-listen", "", "worker mode: serve the binary partition transport on this address instead of HTTP (pair with a coordinator started with -partition-peers)")
	partitionPeers := flag.String("partition-peers", "", "coordinator mode: comma-separated worker transport addresses; group serving fans out to them over coalesced binary RPCs")
	state := flag.String("state", "", "state directory for durable storage (empty = in-memory)")
	timeout := flag.Duration("timeout", httpapi.DefaultTimeout, "per-request timeout (negative disables)")
	maxInFlight := flag.Int("max-inflight", httpapi.DefaultMaxInFlight, "max concurrently served requests, 429 beyond (negative disables)")
	targetP95 := flag.Duration("adaptive-target-p95", 0, "p95 latency target enabling AIMD adaptation of the in-flight limit (0 = fixed limit)")
	minInFlight := flag.Int("min-inflight", httpapi.DefaultMinInFlight, "floor for the adaptive in-flight limit")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGINT/SIGTERM shutdown waits for in-flight requests to finish")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address, e.g. localhost:6060 (empty = disabled; never exposed on the API listener)")
	flag.Parse()

	logger := log.New(os.Stderr, "iphrd ", log.LstdFlags)
	cfg := fairhealth.Config{
		Delta: *delta, K: *k, Aggregation: *aggr, Scorer: *scorer,
		CacheTTL: *cacheTTL, CacheMaxEntries: *cacheMaxEntries, CacheMaxCost: *cacheMaxCost,
		CacheTTLMin: *cacheTTLMin, CacheTTLMax: *cacheTTLMax, CacheAdaptEvery: *cacheAdaptEvery,
		CandidateIndex: *candidateIndex, CandidateK: *candidateK,
	}
	if *partitionListen != "" {
		if *partitions > 1 || *partitionPeers != "" || *state != "" || *demo {
			logger.Fatalf("config: -partition-listen (worker mode) is exclusive with -partitions, -partition-peers, -state, and -demo — workers receive all state from their coordinator")
		}
		runWorker(logger, cfg, *partitionListen, *pprofAddr)
		return
	}

	var sys backend
	var err error
	switch {
	case *partitionPeers != "":
		if *partitions > 1 || *state != "" {
			logger.Fatalf("config: -partition-peers (networked coordinator) is exclusive with -partitions and -state (networked state lives in the workers plus the coordinator's journal)")
		}
		var coord *partition.Networked
		coord, err = partition.NewNetworked(cfg, splitPeers(*partitionPeers), partition.NetOptions{})
		if err == nil {
			snap := coord.TransportStats()
			logger.Printf("networked partitioned serving: %d/%d peers live (%s)", snap.PeersLive, snap.PeersTotal, *partitionPeers)
		}
		sys = coord
	case *partitions > 1:
		cfg.Partitions = *partitions
		var coord *partition.Coordinator
		if *state != "" {
			coord, err = partition.NewPersistent(cfg, partition.Options{}, *state)
		} else {
			coord, err = partition.New(cfg, partition.Options{})
		}
		if err == nil {
			st := coord.Stats()
			logger.Printf("partitioned serving: %d partitions; %d ratings, %d patients", coord.PartitionCount(), st.Ratings, st.Patients)
		}
		sys = coord
	case *state != "":
		var s *fairhealth.System
		s, err = fairhealth.NewPersistent(cfg, *state)
		if err == nil {
			st := s.Stats()
			logger.Printf("restored state from %s: %d ratings, %d patients", *state, st.Ratings, st.Patients)
		}
		sys = s
	default:
		sys, err = fairhealth.New(cfg)
	}
	if err != nil {
		logger.Fatalf("config: %v", err)
	}

	if *demo && sys.Stats().Ratings > 0 {
		logger.Printf("state already populated; skipping demo load")
		*demo = false
	}
	if *demo {
		start := time.Now()
		ds, err := dataset.Generate(dataset.Config{Seed: *demoSeed, Users: *demoUsers, Items: 120, RatingsPerUser: 25})
		if err != nil {
			logger.Fatalf("demo dataset: %v", err)
		}
		for _, tr := range ds.Ratings.Triples() {
			if err := sys.AddRating(string(tr.User), string(tr.Item), float64(tr.Value)); err != nil {
				logger.Fatalf("demo rating: %v", err)
			}
		}
		for _, id := range ds.Profiles.IDs() {
			prof, err := ds.Profiles.Get(id)
			if err != nil {
				logger.Fatalf("demo profile: %v", err)
			}
			problems := make([]string, len(prof.Problems))
			for i, c := range prof.Problems {
				problems[i] = string(c)
			}
			err = sys.AddPatient(fairhealth.Patient{
				ID: string(prof.ID), Age: prof.Age, Gender: string(prof.Gender),
				Problems: problems, Medications: prof.Medications,
			})
			if err != nil {
				logger.Fatalf("demo patient: %v", err)
			}
		}
		for _, d := range ds.Documents {
			if err := sys.AddDocument(string(d.ID), d.Title, d.Body); err != nil {
				logger.Fatalf("demo document: %v", err)
			}
		}
		st := sys.Stats()
		logger.Printf("demo data loaded in %v: %d patients, %d items, %d ratings, %d documents",
			time.Since(start).Round(time.Millisecond), st.Patients, st.Items, st.Ratings, st.Documents)
	}

	// The profiler gets its own mux on its own listener: the handlers
	// are registered explicitly (not via the net/http/pprof import's
	// DefaultServeMux side effect, which the API server never serves
	// anyway), so /debug/pprof cannot leak onto the /v1 address no
	// matter how the main handler chain evolves. Off by default —
	// profiling is an operator action, not a standing endpoint.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof: %v", err)
			}
		}()
		logger.Printf("pprof listening on %s (debug only; keep off public interfaces)", *pprofAddr)
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: httpapi.NewWithOptions(sys, httpapi.Options{
			Logger:      logger,
			Timeout:     *timeout,
			MaxInFlight: *maxInFlight,
			TargetP95:   *targetP95,
			MinInFlight: *minInFlight,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Serve until the listener fails or a shutdown signal arrives.
	// SIGINT/SIGTERM drain gracefully: the listener closes immediately,
	// in-flight requests get up to -drain-timeout to finish, and only
	// then is the System closed (cache janitors stopped, WAL released)
	// — a kill no longer drops requests mid-flight or skips Close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			sys.Close()
			logger.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		logger.Printf("shutdown signal received; draining for up to %v", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
		<-serveErr // ListenAndServe has returned ErrServerClosed by now
	}
	if err := sys.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	fmt.Println("bye")
}

// splitPeers parses the -partition-peers list, dropping empty
// segments so a trailing comma is not a phantom worker.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runWorker is -partition-listen mode: one full replica serving the
// binary partition transport instead of HTTP. All state arrives from
// the coordinator (replicated writes, compressed journal catch-up),
// so the worker starts empty and converges. The scoring flags must
// match the coordinator's — the Hello handshake enforces it via the
// config fingerprint.
func runWorker(logger *log.Logger, cfg fairhealth.Config, addr, pprofAddr string) {
	sys, err := fairhealth.New(cfg)
	if err != nil {
		logger.Fatalf("config: %v", err)
	}
	if pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		psrv := &http.Server{Addr: pprofAddr, Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof: %v", err)
			}
		}()
	}
	srv := transport.NewServer(sys, partition.ConfigFingerprint(sys.Config()))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", addr, err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Printf("partition worker listening on %s (fingerprint %s)", addr, partition.ConfigFingerprint(sys.Config()))
	select {
	case err := <-serveErr:
		if err != nil {
			sys.Close()
			logger.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		stop()
		logger.Printf("shutdown signal received")
		srv.Close()
		<-serveErr
	}
	if err := sys.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	fmt.Println("bye")
}
